package fsserver

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"archos/internal/arch"
	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
	"archos/internal/obs"
)

// scriptedCrash fires at chosen draws of one crash window, for
// deterministic single-window experiments (the seeded schedules are
// exercised by the soak).
type scriptedCrash struct {
	point faultplane.CrashPoint
	fire  map[int]bool
	n     int
}

func (c *scriptedCrash) CrashNow(p faultplane.CrashPoint) bool {
	if p != c.point {
		return false
	}
	c.n++
	return c.fire[c.n]
}

// crashRun replays the script on the decomposed arrangement under the
// seeded chaos policy plus the seeded crash schedule, returning the
// final state digest (read through the server — recovery swaps the FS)
// and everything needed to assert byte-reproducibility.
func crashRun(t *testing.T, cm *kernel.CostModel, seed int64, record bool) (string, Stats, faultplane.CrashCounts, float64, []obs.Event) {
	t.Helper()
	link := wire.NewLink(localNet)
	link.SetFaultPlane(faultplane.New(faultplane.Chaos(seed)))
	remote := NewRemoteOnLink(fs.New(256), cm, link)
	crash := faultplane.NewCrash(faultplane.ChaosCrash(seed))
	remote.SetCrashPlane(crash)
	var rec *obs.Recorder
	if record {
		rec = obs.NewRecorder(link)
		remote.SetRecorder(rec)
	}
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatalf("crash soak (seed %d) failed: %v", seed, err)
	}
	final := remote.server.CurrentFS()
	if final.OpenFDs() != 0 {
		t.Errorf("crash soak (seed %d) leaked %d descriptors", seed, final.OpenFDs())
	}
	var events []obs.Event
	if rec != nil {
		events = rec.Events()
	}
	return final.Fingerprint(), remote.Stats(), crash.Counts(), link.Clock(), events
}

func TestCrashSoakConvergesToMonolithic(t *testing.T) {
	// Chaos faults (≥20% combined disruption) plus periodic server
	// crashes — including deaths between WAL append and reply — and the
	// decomposed file system must still end byte-identical to the
	// fault-free monolithic run.
	cm := kernel.NewCostModel(arch.R3000)
	want := cleanMonolithicFingerprint(t, cm)
	for _, seed := range []int64{1991, 42, 7} {
		got, st, cc, _, _ := crashRun(t, cm, seed, false)
		if got != want {
			t.Errorf("seed %d: crashed-and-recovered state diverged from fault-free monolithic state", seed)
		}
		if cc.Crashes == 0 {
			t.Errorf("seed %d: crash schedule never fired: %+v", seed, cc)
		}
		if st.CrashesInjected != cc.Crashes {
			t.Errorf("seed %d: CrashesInjected = %d, plane counted %d", seed, st.CrashesInjected, cc.Crashes)
		}
		if st.Recoveries != cc.Crashes {
			t.Errorf("seed %d: %d crashes but %d recoveries", seed, cc.Crashes, st.Recoveries)
		}
		if st.RecoveryReplayedOps == 0 {
			t.Errorf("seed %d: recoveries replayed nothing from the WAL", seed)
		}
		if st.DegradedOps != 0 {
			t.Errorf("seed %d: %d ops degraded despite the retry budget", seed, st.DegradedOps)
		}
		t.Logf("seed %d: crashes=%d (recv=%d pre-apply=%d pre-reply=%d) replayed=%d sessions=%d logDups=%d",
			seed, cc.Crashes, cc.OnRecv, cc.PreApply, cc.PreReply,
			st.RecoveryReplayedOps, st.Wire.SessionsReestablished, st.Wire.LogDuplicates)
	}
}

func TestCrashSoakIsBitReproducible(t *testing.T) {
	// Same seed, same crashes, same recoveries, same bytes: fingerprint,
	// stats, crash counts, virtual clock, and the full observability
	// event stream must all match between two runs.
	cm := kernel.NewCostModel(arch.R3000)
	fp1, st1, cc1, clock1, ev1 := crashRun(t, cm, 1991, true)
	fp2, st2, cc2, clock2, ev2 := crashRun(t, cm, 1991, true)
	if fp1 != fp2 {
		t.Error("same seed produced different file-system states")
	}
	if st1 != st2 {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", st1, st2)
	}
	if cc1 != cc2 {
		t.Errorf("same seed produced different crash counts:\n%+v\n%+v", cc1, cc2)
	}
	if clock1 != clock2 {
		t.Errorf("same seed produced different virtual clocks: %v vs %v", clock1, clock2)
	}
	if len(ev1) == 0 || !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("same seed produced different event streams (%d vs %d events)", len(ev1), len(ev2))
	}
}

func TestPreReplyCrashDoesNotDoubleApply(t *testing.T) {
	// The classic hazard: the write is logged and applied, the server
	// dies before the reply leaves. The retransmission must be answered
	// from the WAL by the restarted server — the write applies once.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	// Draws of the pre-reply window: one per executed call.
	// mkdir=1, create=2, write=3 — fire on the write.
	remote.SetCrashPlane(&scriptedCrash{point: faultplane.CrashPreReply, fire: map[int]bool{3: true}})

	if err := remote.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	fd, err := remote.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("exactly once across the crash")
	n, err := remote.Write(fd, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write across crash: n=%d err=%v", n, err)
	}
	got, err := remote.server.CurrentFS().ReadFile("/d/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("file = %q (err %v), want the payload exactly once", got, err)
	}
	st := remote.Stats()
	if st.CrashesInjected != 1 || st.Recoveries != 1 {
		t.Errorf("crashes=%d recoveries=%d, want 1 and 1", st.CrashesInjected, st.Recoveries)
	}
	if st.RecoveryReplayedOps != 3 {
		t.Errorf("replayed = %d, want 3 (mkdir, create, write)", st.RecoveryReplayedOps)
	}
	if st.Wire.LogDuplicates != 1 {
		t.Errorf("LogDuplicates = %d, want 1 (retransmit answered from the WAL)", st.Wire.LogDuplicates)
	}
	if st.Wire.SessionsReestablished != 1 {
		t.Errorf("SessionsReestablished = %d, want 1", st.Wire.SessionsReestablished)
	}
}

func TestPreApplyCrashReplaysLoggedOp(t *testing.T) {
	// The server dies after the WAL append, before the apply. The op is
	// durable but unapplied; recovery replays it, and the retransmission
	// is answered from the replayed session — still exactly once.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	// Draws of the pre-apply window: one per logged op.
	remote.SetCrashPlane(&scriptedCrash{point: faultplane.CrashPreApply, fire: map[int]bool{3: true}})

	if err := remote.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	fd, err := remote.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("logged, unapplied, replayed")
	if _, err := remote.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	got, err := remote.server.CurrentFS().ReadFile("/d/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("file = %q (err %v), want the payload exactly once", got, err)
	}
	st := remote.Stats()
	if st.Recoveries != 1 || st.RecoveryReplayedOps != 3 {
		t.Errorf("recoveries=%d replayed=%d, want 1 and 3", st.Recoveries, st.RecoveryReplayedOps)
	}
	if st.Wire.LogDuplicates != 1 {
		t.Errorf("LogDuplicates = %d, want 1", st.Wire.LogDuplicates)
	}
}

// resendLastWrite hand-crafts a retransmission of r's last Write call
// (call IDs are sequential per client) and pumps the server once.
func resendLastWrite(t *testing.T, r *Remote, callID uint32, fd int, payload []byte) {
	t.Helper()
	body, err := wire.Marshal(int64(fd), payload)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.Encode(wire.Header{
		Kind: wire.KindCall, CallID: callID, ProcID: ProcWrite, ClientID: r.client.ClientID,
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	r.link.Send(wire.A, frame)
	r.server.Wire.Poll()
}

// expectReplayedReply asserts that exactly one regenerated reply for
// callID sits in r's receive queue, carrying the expected epoch.
func expectReplayedReply(t *testing.T, r *Remote, callID, wantEpoch uint32) {
	t.Helper()
	frame, err := r.link.RecvClient(wire.A, r.client.ClientID)
	if err != nil {
		t.Fatalf("no reply queued for the retransmitted call: %v", err)
	}
	h, _, err := wire.Decode(frame)
	if err != nil {
		t.Fatalf("regenerated reply undecodable: %v", err)
	}
	if h.CallID != callID || h.Epoch != wantEpoch {
		t.Errorf("reply call=%d epoch=%d, want call=%d epoch=%d", h.CallID, h.Epoch, callID, wantEpoch)
	}
}

func TestEvictedRetransmitServedFromWALLive(t *testing.T) {
	// LRU eviction narrows the reply cache's at-most-once window; the
	// WAL heals it without any crash: a second client's traffic evicts
	// the first client's entry from a capacity-one cache, and the
	// first client's retransmitted write must still not re-execute.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	r1 := NewRemoteOnLink(fs.New(64), cm, link)
	r1.server.Wire.ConfigureReplyCache(1, 1)

	fd, err := r1.Create("/f") // call 1
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("written once")
	if _, err := r1.Write(fd, payload); err != nil { // call 2
		t.Fatal(err)
	}
	r2 := r1.NewPeer()
	if _, err := r2.Stat("/f"); err != nil { // evicts r1's cache entry
		t.Fatal(err)
	}
	if ev := r1.server.Wire.Stats().RepliesEvicted; ev == 0 {
		t.Fatal("capacity-one cache evicted nothing; the test is not exercising eviction")
	}
	resendLastWrite(t, r1, 2, fd, payload)
	got, err := r1.server.CurrentFS().ReadFile("/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("file = %q (err %v), want the payload exactly once", got, err)
	}
	st := r1.server.Wire.Stats()
	if st.LogDuplicates != 1 {
		t.Errorf("LogDuplicates = %d, want 1 (evicted retransmit answered from the WAL)", st.LogDuplicates)
	}
	expectReplayedReply(t, r1, 2, 1)
}

func TestEvictedRetransmitAcrossRestartServedFromWAL(t *testing.T) {
	// Eviction and a crash compound: the entry is evicted, then the
	// whole cache dies with the server. The restarted server must
	// answer the retransmitted write from the WAL session table — one
	// execution total, reply stamped with the new epoch.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	r1 := NewRemoteOnLink(fs.New(64), cm, link)
	r1.server.Wire.ConfigureReplyCache(1, 1)

	fd, err := r1.Create("/f") // call 1
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives eviction and restart")
	if _, err := r1.Write(fd, payload); err != nil { // call 2
		t.Fatal(err)
	}
	r2 := r1.NewPeer()
	if _, err := r2.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	r1.Crash()
	resendLastWrite(t, r1, 2, fd, payload) // Poll restarts the server first
	got, err := r1.server.CurrentFS().ReadFile("/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("file = %q (err %v), want the payload exactly once", got, err)
	}
	st := r1.Stats()
	if st.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries)
	}
	if st.Wire.LogDuplicates != 1 {
		t.Errorf("LogDuplicates = %d, want 1", st.Wire.LogDuplicates)
	}
	expectReplayedReply(t, r1, 2, 2)
}

func TestUntypedTransportFailuresBecomeErrUnavailable(t *testing.T) {
	// An oversize write can never be framed: the transport fails before
	// anything is sent. That failure must surface as the same typed
	// ErrUnavailable (and degraded-op count) as an exhausted budget, not
	// as a raw codec error.
	cm := kernel.NewCostModel(arch.R3000)
	remote := NewRemoteOnLink(fs.New(64), cm, wire.NewLink(localNet))
	fd, err := remote.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Write(fd, make([]byte, 80<<10)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("oversize write returned %v, want ErrUnavailable", err)
	}
	if got := remote.Stats().DegradedOps; got != 1 {
		t.Errorf("DegradedOps = %d, want 1", got)
	}
	// Server-side failures keep their own type: they are the operation
	// failing, not the transport.
	if _, err := remote.Open("/does-not-exist"); !errors.Is(err, ErrRemote) {
		t.Errorf("remote fs error returned %v, want ErrRemote", err)
	}
}
