package fsserver

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"archos/internal/arch"
	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
	"archos/internal/obs"
)

func TestReplicaConfigValidate(t *testing.T) {
	if err := DefaultReplicaConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	nan := 0.0
	nan /= nan
	bad := []struct {
		name string
		cfg  ReplicaConfig
		want string
	}{
		{"negative backups", ReplicaConfig{Backups: -1, AckTimeoutMicros: 1, AckRetries: 1}, "Backups"},
		{"failover without backups", ReplicaConfig{Backups: 0, Failover: true, AckTimeoutMicros: 1, AckRetries: 1}, "zero backups"},
		{"zero ack timeout", ReplicaConfig{Backups: 1, AckTimeoutMicros: 0, AckRetries: 1}, "AckTimeoutMicros"},
		{"NaN ack timeout", ReplicaConfig{Backups: 1, AckTimeoutMicros: nan, AckRetries: 1}, "AckTimeoutMicros"},
		{"zero ack retries", ReplicaConfig{Backups: 1, AckTimeoutMicros: 1, AckRetries: 0}, "AckRetries"},
	}
	for _, c := range bad {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", c.name, err, c.want)
		}
		// NewCluster panics on exactly the validation error.
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewCluster did not panic", c.name)
				}
			}()
			NewCluster(64, kernel.NewCostModel(arch.R3000), c.cfg)
		}()
	}
}

func TestReplicationShipsEveryMutation(t *testing.T) {
	// Fault-free baseline: every logged op reaches the backup before its
	// reply reaches the client, so the backup's applied cursor tracks the
	// primary's log exactly and the ship buffer drains to nothing.
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(256, cm, DefaultReplicaConfig())
	remote := cluster.NewClient()
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatal(err)
	}
	st := cluster.Stats()
	if st.PrimarySeq == 0 || st.BackupSeq != st.PrimarySeq {
		t.Errorf("backup applied %d of %d primary records", st.BackupSeq, st.PrimarySeq)
	}
	if st.ReplicationLag != 0 {
		t.Errorf("ReplicationLag = %d after a quiescent run, want 0", st.ReplicationLag)
	}
	if st.ShipFailures != 0 || st.LagOps != 0 {
		t.Errorf("fault-free run shipped with failures: %+v", st)
	}
	if st.SeqViolations != 0 || st.Reships != 0 {
		t.Errorf("fault-free run had sequence anomalies: %+v", st)
	}
	if err := cluster.Audit(); err != nil {
		t.Error(err)
	}
	// The backup's eagerly-applied state already equals the primary's.
	if got, want := cluster.Backup(0).srv.CurrentFS().Fingerprint(), cluster.Primary().CurrentFS().Fingerprint(); got != want {
		t.Error("backup state diverged from primary state in a fault-free run")
	}
}

func TestKillPrimaryForeverFailsOver(t *testing.T) {
	// The deterministic failover path: the primary dies permanently
	// between ops, the next op fails over to the promoted backup, and
	// the service keeps answering with no state lost.
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(64, cm, DefaultReplicaConfig())
	remote := cluster.NewClient()

	if err := remote.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	fd, err := remote.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives the primary's permanent death")
	if _, err := remote.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	cluster.KillPrimaryForever()
	// Every op after the death is served by the promoted backup.
	if err := remote.Close(fd); err != nil {
		t.Fatalf("close across failover: %v", err)
	}
	st, err := remote.Stat("/d/f")
	if err != nil || st.Size != len(payload) {
		t.Fatalf("stat across failover: %+v, %v", st, err)
	}
	got, err := cluster.ActiveFS().ReadFile("/d/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("promoted state = %q (err %v), want the payload", got, err)
	}
	cst := cluster.Stats()
	if cst.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", cst.Failovers)
	}
	if cst.PromotedEpoch < 2 {
		t.Errorf("PromotedEpoch = %d, want >= 2 (fencing the dead primary's epoch 1)", cst.PromotedEpoch)
	}
	if !cluster.Backup(0).Promoted() {
		t.Error("backup not marked promoted")
	}
	if err := cluster.Audit(); err != nil {
		t.Error(err)
	}
	if ws := remote.Stats().Wire; ws.Failovers != 1 {
		t.Errorf("client observed %d failovers, want 1", ws.Failovers)
	}
}

// killAtPreReply fires permanently at the k-th pre-reply draw: the op is
// logged, shipped, and applied — and the primary is dead before the
// reply leaves, forever.
type killAtPreReply struct {
	k     int
	n     int
	fired bool
}

func (c *killAtPreReply) CrashNow(p faultplane.CrashPoint) bool {
	if p != faultplane.CrashPreReply {
		return false
	}
	c.n++
	if c.n == c.k {
		c.fired = true
		return true
	}
	return false
}

func (c *killAtPreReply) Fatal() bool { return c.fired }

func TestDedupHoldsAcrossPromotion(t *testing.T) {
	// The at-most-once hazard, replicated edition: the primary executes
	// a write, ships it, and dies permanently before replying. The
	// client retransmits, gives up on the primary, and the same call ID
	// lands on the promoted backup — which has never served this client,
	// so its reply cache is as empty as any eviction could make it. The
	// shipped WAL session table must answer the retransmission; the
	// handler must not run again.
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(64, cm, DefaultReplicaConfig())
	remote := cluster.NewClient()
	// Pre-reply draws: one per executed call. create=1, write=2.
	cluster.SetCrashPlane(&killAtPreReply{k: 2})

	fd, err := remote.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("acknowledged exactly once, by whichever replica answers")
	n, err := remote.Write(fd, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write across failover: n=%d err=%v", n, err)
	}
	got, err := cluster.ActiveFS().ReadFile("/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("file = %q (err %v), want the payload exactly once", got, err)
	}
	cst := cluster.Stats()
	if cst.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", cst.Failovers)
	}
	bst := cluster.Backup(0).srv.Wire.Stats()
	if bst.LogDuplicates != 1 {
		t.Errorf("backup LogDuplicates = %d, want 1 (retransmit answered from the shipped WAL)", bst.LogDuplicates)
	}
	if bst.Served != 0 {
		t.Errorf("backup executed %d fresh calls for the retransmission, want 0", bst.Served)
	}
	if err := cluster.Audit(); err != nil {
		t.Error(err)
	}
	// The regenerated reply carries the promoted epoch; the client's
	// fence has adopted it.
	if fence := remote.fo.Fence().Max(); fence < 2 {
		t.Errorf("client fence = %d, want the promoted epoch (>= 2)", fence)
	}
}

func TestReplicationPartitionCatchUp(t *testing.T) {
	// A seeded partition plane on the replication link swallows ship
	// frames; the ack budget rides most partitions out, and the shipping
	// cursor re-ships whatever a blown budget left behind — by the end of
	// the run the backup has applied everything, exactly once.
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(256, cm, DefaultReplicaConfig())
	part := faultplane.NewPartition(faultplane.ReplPartition(1991))
	cluster.ReplLink(0).SetFaultPlane(part)
	remote := cluster.NewClient()
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatal(err)
	}
	pc := part.Counts()
	if pc.Partitions == 0 {
		t.Fatalf("partition schedule never fired: %+v", pc)
	}
	st := cluster.Stats()
	if st.BackupSeq != st.PrimarySeq || st.ReplicationLag != 0 {
		t.Errorf("backup applied %d of %d (lag %d) after partitions healed",
			st.BackupSeq, st.PrimarySeq, st.ReplicationLag)
	}
	if st.SeqViolations != 0 {
		t.Errorf("SeqViolations = %d, want 0", st.SeqViolations)
	}
	if err := cluster.Audit(); err != nil {
		t.Error(err)
	}
	t.Logf("partitions=%d dropped=%d shipCalls=%d shipFailures=%d reships=%d lagOps=%d",
		pc.Partitions, pc.Dropped, st.ShipCalls, st.ShipFailures, st.Reships, st.LagOps)
}

// failoverRun replays the script against a replica set under chaos on
// the client–primary link plus a kill-forever crash schedule on the
// primary, returning everything needed to assert convergence and
// byte-reproducibility.
func failoverRun(t *testing.T, cm *kernel.CostModel, seed int64, record bool) (string, Stats, ClusterStats, faultplane.CrashCounts, float64, []obs.Event) {
	t.Helper()
	cluster := NewCluster(256, cm, DefaultReplicaConfig())
	cluster.PrimaryLink().SetFaultPlane(faultplane.New(faultplane.Chaos(seed)))
	crash := faultplane.NewCrash(faultplane.ChaosKill(seed))
	cluster.SetCrashPlane(crash)
	remote := cluster.NewClient()
	var rec *obs.Recorder
	if record {
		rec = obs.NewRecorder(cluster.Clock())
		remote.SetRecorder(rec)
	}
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatalf("failover soak (seed %d) failed: %v", seed, err)
	}
	if err := cluster.Audit(); err != nil {
		t.Errorf("seed %d: %v", seed, err)
	}
	final := remote.ServerFS()
	if final.OpenFDs() != 0 {
		t.Errorf("failover soak (seed %d) leaked %d descriptors", seed, final.OpenFDs())
	}
	var events []obs.Event
	if rec != nil {
		events = rec.Events()
	}
	return final.Fingerprint(), remote.Stats(), cluster.Stats(), crash.Counts(), cluster.Clock().Clock(), events
}

func TestFailoverSoakConvergesToMonolithic(t *testing.T) {
	// The acceptance soak: chaos faults on the client–primary link, the
	// primary crashing on a kill-forever schedule (two recoveries, then
	// permanent death mid-run), a backup promoting itself — and the
	// replicated service's final state must still be byte-identical to
	// the fault-free monolithic run, with zero duplicate executions.
	cm := kernel.NewCostModel(arch.R3000)
	want := cleanMonolithicFingerprint(t, cm)
	for _, seed := range []int64{1991, 42, 7} {
		got, st, cst, cc, _, _ := failoverRun(t, cm, seed, false)
		if got != want {
			t.Errorf("seed %d: replicated state diverged from fault-free monolithic state", seed)
		}
		if cc.Crashes != 3 {
			t.Errorf("seed %d: kill schedule fired %d crashes, want 3 (the third permanent)", seed, cc.Crashes)
		}
		if cst.Failovers != 1 {
			t.Errorf("seed %d: Failovers = %d, want exactly 1", seed, cst.Failovers)
		}
		if cst.PromotedEpoch < 2 {
			t.Errorf("seed %d: PromotedEpoch = %d, want >= 2", seed, cst.PromotedEpoch)
		}
		if cst.SeqViolations != 0 {
			t.Errorf("seed %d: %d sequence violations in the shipped stream", seed, cst.SeqViolations)
		}
		if st.DegradedOps != 0 {
			t.Errorf("seed %d: %d ops degraded despite failover", seed, st.DegradedOps)
		}
		if st.Wire.Failovers != 1 {
			t.Errorf("seed %d: client counted %d failovers, want 1", seed, st.Wire.Failovers)
		}
		t.Logf("seed %d: crashes=%d failover@epoch=%d shipCalls=%d shipFailures=%d reships=%d logDups=%d",
			seed, cc.Crashes, cst.PromotedEpoch, cst.ShipCalls, cst.ShipFailures, cst.Reships, st.Wire.LogDuplicates)
	}
}

func TestFailoverSoakIsBitReproducible(t *testing.T) {
	// Same seed, same crashes, same promotion, same bytes: fingerprint,
	// stats, cluster counters, crash counts, the shared virtual clock,
	// and the full event stream must match between two runs.
	cm := kernel.NewCostModel(arch.R3000)
	fp1, st1, cst1, cc1, clock1, ev1 := failoverRun(t, cm, 1991, true)
	fp2, st2, cst2, cc2, clock2, ev2 := failoverRun(t, cm, 1991, true)
	if fp1 != fp2 {
		t.Error("same seed produced different file-system states")
	}
	if st1 != st2 {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", st1, st2)
	}
	if cst1 != cst2 {
		t.Errorf("same seed produced different cluster stats:\n%+v\n%+v", cst1, cst2)
	}
	if cc1 != cc2 {
		t.Errorf("same seed produced different crash counts:\n%+v\n%+v", cc1, cc2)
	}
	if clock1 != clock2 {
		t.Errorf("same seed produced different virtual clocks: %v vs %v", clock1, clock2)
	}
	if len(ev1) == 0 || !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("same seed produced different event streams (%d vs %d events)", len(ev1), len(ev2))
	}
}

func TestDeposedPrimaryShipIsRejected(t *testing.T) {
	// Replication-plane fencing: once a backup has promoted itself, a
	// ship call from a deposed primary must be refused, not applied.
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(64, cm, DefaultReplicaConfig())
	remote := cluster.NewClient()
	if err := remote.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	cluster.KillPrimaryForever()
	if err := remote.Mkdir("/d2"); err != nil { // promotes the backup
		t.Fatal(err)
	}
	// A zombie primary trying to ship now must get an error back; the
	// cursor query stays answerable (it is read-only).
	ship := wire.NewClient(cluster.ReplLink(0), wire.A)
	if _, err := ship.Call(cluster.Backup(0).Repl, ProcReplSeq); err != nil {
		t.Fatalf("seq query should still answer: %v", err)
	}
	payload, err := fs.EncodeRecords([]fs.Record{{Seq: 99, Op: fs.OpMkdir, Path: "/zombie"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ship.Call(cluster.Backup(0).Repl, ProcShip, uint32(1), payload); err == nil {
		t.Fatal("promoted backup accepted a ship from a deposed primary")
	}
	if _, err := cluster.ActiveFS().Stat("/zombie"); err == nil {
		t.Error("zombie ship mutated the promoted state")
	}
}
