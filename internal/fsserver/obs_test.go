package fsserver

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"archos/internal/arch"
	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
	"archos/internal/obs"
)

// tracedChaosRun is chaosRun with the observability recorder attached;
// it returns the recorder alongside the run's outputs.
func tracedChaosRun(t *testing.T, cm *kernel.CostModel, seed int64) (*obs.Recorder, string, Stats, float64) {
	t.Helper()
	link := wire.NewLink(localNet)
	link.SetFaultPlane(faultplane.New(faultplane.Chaos(seed)))
	fsys := fs.New(256)
	remote := NewRemoteOnLink(fsys, cm, link)
	rec := obs.NewRecorder(link)
	remote.SetRecorder(rec)
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatalf("traced chaos run (seed %d) failed: %v", seed, err)
	}
	return rec, fsys.Fingerprint(), remote.Stats(), link.Clock()
}

func TestChaosTraceDeterministic(t *testing.T) {
	// Same seed, same drive: the exported JSONL event stream must be
	// byte-identical — the property the CI determinism gate rests on.
	cm := kernel.NewCostModel(arch.R3000)
	rec1, _, _, _ := tracedChaosRun(t, cm, 1991)
	rec2, _, _, _ := tracedChaosRun(t, cm, 1991)

	var b1, b2 bytes.Buffer
	if err := obs.WriteJSONL(&b1, rec1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&b2, rec2.Events()); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same-seed runs produced different JSONL traces")
	}
}

func TestNilRecorderInvariance(t *testing.T) {
	// Attaching a recorder must not perturb the run: fingerprint, stats,
	// and virtual clock all match the recorder-free drive of the same
	// seed (the nil fast path really is free, and observing does not
	// consume fault-plane randomness).
	cm := kernel.NewCostModel(arch.R3000)
	fpPlain, stPlain, _, clockPlain := chaosRun(t, cm, 1991)
	_, fpTraced, stTraced, clockTraced := tracedChaosRun(t, cm, 1991)
	if fpPlain != fpTraced {
		t.Error("recorder changed the final file-system state")
	}
	if stPlain != stTraced {
		t.Errorf("recorder changed the stats:\nplain:  %+v\ntraced: %+v", stPlain, stTraced)
	}
	if clockPlain != clockTraced {
		t.Errorf("recorder changed the virtual clock: %v vs %v", clockPlain, clockTraced)
	}
}

func TestSpanCausalChain(t *testing.T) {
	// One RPC under forced duplication and delay: its span must show the
	// whole causal chain — call_start, the call frame on the wire, the
	// fault plane's decisions, server execute, the duplicate answered
	// from the reply cache, the reply frame, recv_reply, call_end — in
	// that order, with monotone virtual timestamps.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	link.SetFaultPlane(faultplane.New(faultplane.Policy{
		Seed: 3, Duplicate: 1, DelayProb: 1, DelayMicrosMax: 20,
	}))
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	rec := obs.NewRecorder(link)
	remote.SetRecorder(rec)

	if err := remote.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}

	span := obs.SpanEvents(rec.Events(), 1, 1)
	if len(span) == 0 {
		t.Fatal("no events for (client 1, call 1)")
	}
	find := func(layer, name, attrSub string) int {
		for i, e := range span {
			if e.Layer == layer && e.Name == name && strings.Contains(e.Attrs, attrSub) {
				return i
			}
		}
		t.Fatalf("span has no %s/%s (attrs containing %q); span:\n%s", layer, name, attrSub, fmtSpan(span))
		return -1
	}

	start := find("client", "call_start", "")
	if got := span[start].Proc; got != ProcMkdir {
		t.Errorf("call_start proc = %d, want %d", got, ProcMkdir)
	}
	sendCall := find("link", "send", "kind=call")
	delay := find("fault", "delay", "")
	dup := find("fault", "duplicate", "")
	execute := find("server", "execute", "")
	cacheHit := find("server", "cache_hit", "")
	sendReply := find("link", "send", "kind=reply")
	recv := find("client", "recv_reply", "")
	end := find("client", "call_end", "status=ok")

	for _, ord := range [][2]int{
		{start, sendCall}, {sendCall, execute}, {execute, cacheHit},
		{execute, sendReply}, {sendReply, recv}, {recv, end},
	} {
		if ord[0] >= ord[1] {
			t.Errorf("causal order violated at span indexes %d >= %d; span:\n%s", ord[0], ord[1], fmtSpan(span))
		}
	}
	if delay <= start || dup <= start {
		t.Error("fault decisions recorded before the call started")
	}

	for i := 1; i < len(span); i++ {
		if span[i].T < span[i-1].T {
			t.Errorf("virtual time went backwards at span index %d: %v after %v", i, span[i].T, span[i-1].T)
		}
		if span[i].Seq <= span[i-1].Seq {
			t.Errorf("sequence not increasing at span index %d", i)
		}
	}
	if span[0].Layer != "client" || span[0].Name != "call_start" {
		t.Errorf("span opens with %s/%s, want client/call_start", span[0].Layer, span[0].Name)
	}
	if last := span[len(span)-1]; last.Name != "call_end" {
		t.Errorf("span closes with %s/%s, want client/call_end", last.Layer, last.Name)
	}
}

func fmtSpan(span []obs.Event) string {
	var b strings.Builder
	for _, e := range span {
		fmt.Fprintf(&b, "  seq=%d t=%.3f %s/%s %s\n", e.Seq, e.T, e.Layer, e.Name, e.Attrs)
	}
	return b.String()
}

func TestConcurrentPeersWithRecorder(t *testing.T) {
	// The 8-client soak with tracing on: race-safety of the recorder
	// under concurrent drives (the -race CI configuration), per-client
	// histogram classes counting every completed op, and unchanged
	// exactly-once effects.
	cm := kernel.NewCostModel(arch.R3000)
	const n = 8
	script := func(i int) AndrewMini {
		a := DefaultAndrewMini()
		a.Seed += int64(i)
		a.Root = fmt.Sprintf("/c%02d", i)
		return a
	}

	clean := fs.New(256)
	direct := NewDirect(clean, cm)
	for i := 0; i < n; i++ {
		if _, err := script(i).Run(direct); err != nil {
			t.Fatal(err)
		}
	}

	link := wire.NewLink(localNet)
	link.SetFaultPlane(faultplane.New(faultplane.Chaos(99)))
	fsys := fs.New(256)
	base := NewRemoteOnLink(fsys, cm, link)
	rec := obs.NewRecorder(link)
	base.SetRecorder(rec)
	remotes := make([]*Remote, n)
	for i := range remotes {
		if i == 0 {
			remotes[i] = base
		} else {
			remotes[i] = base.NewPeer()
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, r := range remotes {
		wg.Add(1)
		go func(i int, r *Remote) {
			defer wg.Done()
			_, errs[i] = script(i).Run(r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if fsys.Fingerprint() != clean.Fingerprint() {
		t.Error("combined state diverged from sequential monolithic run")
	}
	for _, r := range remotes {
		st := r.Stats()
		h := rec.Histogram(r.LatencyClass())
		if got := h.Count(); got != uint64(st.Ops) {
			t.Errorf("%s observed %d latencies, want %d ops", r.LatencyClass(), got, st.Ops)
		}
	}
	if rec.EventCount() == 0 {
		t.Error("recorder saw no events")
	}
}
