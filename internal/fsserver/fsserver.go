// Package fsserver runs the fs file system as an operating-system
// service under the paper's two structures, for real: the monolithic
// arrangement invokes it directly (one system call per operation), and
// the decomposed arrangement marshals every operation through the
// ipc/wire transport to a user-level server (one RPC = two system calls
// + two address-space switches per operation, plus stub and transport
// work on actual bytes). Replaying the same file script against both
// produces, mechanically, the cost multiplication that Table 7 counts.
package fsserver

import (
	"errors"
	"fmt"
	"sync"

	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
	"archos/internal/obs"
)

// Procedure numbers of the file service.
const (
	ProcOpen uint32 = iota + 1
	ProcCreate
	ProcClose
	ProcRead
	ProcWrite
	ProcStat
	ProcMkdir
	ProcUnlink
	ProcReadDir
)

// Service is the client-facing file interface; both arrangements
// implement it.
type Service interface {
	Open(path string) (int, error)
	Create(path string) (int, error)
	Close(fd int) error
	Read(fd, n int) ([]byte, error)
	Write(fd int, data []byte) (int, error)
	Stat(path string) (fs.Stat, error)
	Mkdir(path string) error
	Unlink(path string) error
	ReadDir(path string) ([]string, error)

	// Stats reports operations performed and the virtual time charged.
	Stats() Stats
}

// Stats accumulates a client's costs.
type Stats struct {
	Ops            int64
	Syscalls       int64
	ASSwitches     int64
	VirtualMicros  float64 // OS-primitive + transport time
	WireMicros     float64 // portion on the (local) wire, remote case
	PayloadBytes   int64   // marshalled bytes, remote case
	ServerRejected int     // frames the server's checksum rejected
	DegradedOps    int     // ops that returned ErrUnavailable (transport exhausted)

	// Overload accounting, remote case: refusals are split from
	// transport failures because they mean opposite things — an
	// overloaded service is alive and protecting itself.
	OverloadedOps    int // ops the service shed as ErrOverloaded (provably not executed on a clean wire)
	BreakerFastFails int // ops failed locally as ErrDegraded while the circuit breaker was open
	BreakerOpens     int // times the breaker tripped open

	// Crash–recovery accounting, remote case.
	CrashesInjected     int // server process deaths (scheduled or forced)
	Recoveries          int // restarts that replayed the WAL into a new epoch
	RecoveryReplayedOps int // WAL tail records re-applied across all recoveries

	// Wire is the merged client+server transport counter set (remote
	// case): retries, duplicates suppressed, bad frames, backoff time.
	Wire wire.Stats
}

// ---- Monolithic arrangement ----

// Direct invokes the file system in the kernel: one system call per
// operation.
type Direct struct {
	FS *fs.FS
	cm *kernel.CostModel

	stats Stats
}

// NewDirect builds the monolithic arrangement over fsys, pricing each
// operation with cm's system-call cost.
func NewDirect(fsys *fs.FS, cm *kernel.CostModel) *Direct {
	return &Direct{FS: fsys, cm: cm}
}

func (d *Direct) charge() {
	d.stats.Ops++
	d.stats.Syscalls++
	d.stats.VirtualMicros += d.cm.SyscallMicros()
}

func (d *Direct) Open(path string) (int, error)   { d.charge(); return d.FS.Open(path) }
func (d *Direct) Create(path string) (int, error) { d.charge(); return d.FS.Create(path) }
func (d *Direct) Close(fd int) error              { d.charge(); return d.FS.Close(fd) }
func (d *Direct) Mkdir(path string) error         { d.charge(); return d.FS.Mkdir(path) }
func (d *Direct) Unlink(path string) error        { d.charge(); return d.FS.Unlink(path) }
func (d *Direct) Stat(path string) (fs.Stat, error) {
	d.charge()
	return d.FS.Stat(path)
}
func (d *Direct) ReadDir(path string) ([]string, error) { d.charge(); return d.FS.ReadDir(path) }

func (d *Direct) Read(fd, n int) ([]byte, error) {
	d.charge()
	buf := make([]byte, n)
	c, err := d.FS.Read(fd, buf)
	return buf[:c], err
}

func (d *Direct) Write(fd int, data []byte) (int, error) {
	d.charge()
	return d.FS.Write(fd, data)
}

// Stats reports the accumulated costs.
func (d *Direct) Stats() Stats { return d.stats }

// ---- Decomposed arrangement ----

// Recovery cost model: restarting the server charges a fixed process
// re-launch cost plus a per-replayed-record cost to the virtual clock.
// Deterministic constants keep same-seed crash soaks byte-identical.
const (
	recoverBaseMicros  = 500
	recoverPerOpMicros = 2
)

// defaultSnapshotEvery bounds the WAL tail: after this many appends the
// server folds the tail into a snapshot, so recovery replays a bounded
// suffix rather than the whole history.
const defaultSnapshotEvery = 512

// Server wraps a file system behind wire RPC handlers, with a
// write-ahead op log that makes it crash-recoverable. Every mutating
// operation is appended to the WAL before it is applied; the WAL (and
// its snapshots) model stable storage and survive crashes, while the
// FS, the wire server's reply cache, and the pending input queue die
// with the process. On the first Poll after a crash the wire layer runs
// this server's recovery hook: rebuild the FS from the log (Recover
// replays the tail deterministically, so the rebuilt state is
// bit-identical), bump the epoch, re-register the handlers, and charge
// the downtime to the virtual clock.
type Server struct {
	Wire *wire.Server

	// mu guards FS, wal, crasher, and the recovery counters. Lock
	// ordering: wire cache-shard locks → mu → wire.Server's own lock;
	// recovery never touches shard locks (the durable session table is
	// consulted lazily via the dedup authority instead).
	mu      sync.Mutex
	FS      *fs.FS
	wal     *fs.WAL
	link    *wire.Link
	crasher faultplane.Crasher

	// repl, when non-nil, is the primary-side replication machinery: a
	// record is shipped to every backup right after it is appended,
	// before any crash window or the reply — so an acknowledged op is
	// durable on the backups even if this process never runs again.
	repl *replicator

	// SnapshotEvery is the WAL-tail length that triggers a snapshot.
	SnapshotEvery int

	recoveries  int
	replayedOps int
}

// NewServer registers the file service on side of link. The WAL opens
// with a genesis snapshot of fsys, so recovery can rebuild whatever
// state the server started with even before the first mutation.
func NewServer(fsys *fs.FS, link *wire.Link, side wire.Endpoint) *Server {
	s := &Server{
		FS:            fsys,
		Wire:          wire.NewServer(link, side),
		wal:           fs.NewWAL(fsys.CacheBlocks()),
		link:          link,
		SnapshotEvery: defaultSnapshotEvery,
	}
	if err := s.wal.Snapshot(fsys); err != nil {
		panic(err) // gob over our own in-memory structs: cannot fail
	}
	s.Wire.OnRestart(s.recoverNow)
	s.Wire.SetDedupAuthority(s.replayFor)
	s.register()
	return s
}

// SetCrasher attaches a crash schedule to both crash surfaces: the
// wire server's receive and pre-reply windows and this server's
// pre-apply window (after the WAL append, before the FS apply).
func (s *Server) SetCrasher(c faultplane.Crasher) {
	s.mu.Lock()
	s.crasher = c
	s.mu.Unlock()
	s.Wire.SetCrasher(c)
}

// Crash kills the server immediately (the deterministic hook; seeded
// schedules go through SetCrasher). It recovers on the next Poll.
func (s *Server) Crash() { s.Wire.ForceCrash() }

// Recoveries returns how many times the server has crashed and
// recovered, and how many WAL records those recoveries replayed.
func (s *Server) Recoveries() (recoveries, replayedOps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveries, s.replayedOps
}

// CurrentFS returns the live file system. After a recovery this is the
// rebuilt instance, not the one the server was constructed with —
// always read final state through here in crash experiments.
func (s *Server) CurrentFS() *fs.FS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.FS
}

// WALStats exposes the op log's counters.
func (s *Server) WALStats() fs.WALStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Stats()
}

// logApply is the write path discipline: append the record to the WAL,
// then apply it to the FS, then commit the outcome to the client's
// durable session slot. The pre-apply crash window sits between append
// and apply — an op that dies there is durable but unapplied, and
// recovery replays it. Caller identity comes from the frame header, so
// the WAL doubles as the at-most-once record that survives crashes.
func (s *Server) logApply(h wire.Header, r fs.Record) (fs.ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Client = h.ClientID
	r.Call = h.CallID
	r = s.wal.Append(r)
	if rec := s.link.Recorder(); rec.Enabled() {
		// The WAL append is free on the virtual clock — this model
		// charges service time, not log writes — so the event carries a
		// zero duration: an honest 0-width critical-path segment. Val is
		// the durable sequence number, the cross-node trace context the
		// backups key their apply events on.
		rec.Emit(obs.Event{Layer: "wal", Name: "append",
			Client: r.Client, Call: r.Call, Val: float64(r.Seq)})
	}
	if s.repl != nil {
		// Ship-before-apply: the record reaches the backups before this
		// process enters any crash window past the append. A primary
		// that dies anywhere after this line leaves the op durable on
		// the replica set, so failover never loses an acknowledged op.
		s.repl.ship(s.wal, s.Wire.Epoch(), r.Client, r.Call)
	}
	if s.crasher != nil && s.crasher.CrashNow(faultplane.CrashPreApply) {
		return fs.ApplyResult{}, wire.ErrServerCrashed
	}
	res, err := s.FS.Apply(r)
	sess := fs.SessionRecord{Client: r.Client, Call: r.Call, Op: r.Op, Result: res}
	if err != nil {
		sess.Err = err.Error()
	}
	s.wal.Commit(sess)
	if s.SnapshotEvery > 0 && s.wal.SinceSnapshot() >= s.SnapshotEvery {
		if snapErr := s.wal.Snapshot(s.FS); snapErr != nil {
			panic(snapErr)
		}
	}
	return res, err
}

// resultsFor shapes an ApplyResult into the wire results the live
// handler for op would have returned — the regeneration half of
// answering a retransmission from the log.
func resultsFor(op fs.OpCode, res fs.ApplyResult) []interface{} {
	switch op {
	case fs.OpOpen, fs.OpCreate:
		return []interface{}{int64(res.FD)}
	case fs.OpRead:
		return []interface{}{res.Data}
	case fs.OpWrite:
		return []interface{}{int64(res.N)}
	}
	return nil
}

// procForOp echoes the procedure number into regenerated reply headers.
var procForOp = map[fs.OpCode]uint32{
	fs.OpMkdir:  ProcMkdir,
	fs.OpCreate: ProcCreate,
	fs.OpOpen:   ProcOpen,
	fs.OpClose:  ProcClose,
	fs.OpRead:   ProcRead,
	fs.OpWrite:  ProcWrite,
	fs.OpUnlink: ProcUnlink,
}

// replayFor is the wire server's dedup authority: on a reply-cache
// miss (the cache was wiped by a restart, or the entry fell to LRU
// eviction) it consults the WAL session table and regenerates the
// reply the client is owed, stamped with the current epoch. The
// handler never re-runs for a logged call.
func (s *Server) replayFor(clientID uint32) (uint32, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.wal.Session(clientID)
	if !ok {
		return 0, nil, false
	}
	var results []interface{}
	if sess.Err != "" {
		results = []interface{}{false, sess.Err}
	} else {
		results = append([]interface{}{true}, resultsFor(sess.Op, sess.Result)...)
	}
	body, err := wire.Marshal(results...)
	if err != nil {
		return sess.Call, nil, true // suppress the duplicate; no reply to give
	}
	frame, err := wire.Encode(wire.Header{
		Kind:     wire.KindReply,
		CallID:   sess.Call,
		ProcID:   procForOp[sess.Op],
		ClientID: sess.Client,
		Epoch:    s.Wire.Epoch(),
	}, body)
	if err != nil {
		return sess.Call, nil, true
	}
	return sess.Call, frame, true
}

// recoverNow is the restart hook: rebuild the FS from the WAL, move
// the wire server into its next epoch (invalidating the reply cache),
// re-register the handlers, and charge the deterministic recovery
// downtime to the virtual clock.
func (s *Server) recoverNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	fsys, _, replayed, err := fs.Recover(s.wal)
	if err != nil {
		panic(err) // stable storage decode failure: unrecoverable corruption
	}
	s.FS = fsys
	s.recoveries++
	s.replayedOps += replayed
	s.Wire.Restart()
	s.register()
	if s.repl != nil {
		// The restarted primary lost its volatile replication cursors;
		// re-learn each backup's applied position and ship whatever the
		// crash interrupted.
		s.repl.resync(s.wal, s.Wire.Epoch())
	}
	micros := float64(recoverBaseMicros + recoverPerOpMicros*replayed)
	s.link.AdvanceClock(micros)
	rec := s.link.Recorder()
	rec.Event("server", "recover", 0, 0,
		fmt.Sprintf("epoch=%d replayed=%d micros=%g", s.Wire.Epoch(), replayed, micros))
	rec.Observe("server.recovery", micros)
}

// register binds the file service through the raw handler path — the
// stubs a compiler would emit, reading arguments with a typed cursor
// and building replies in place. Mutating procedures go through the
// WAL discipline (logApply); Stat and ReadDir are idempotent queries —
// re-executing them after a crash is harmless, so they bypass the log.
// Every handler checks the cursor before logApply: a mutation must
// never be logged off a malformed argument stream. Handlers read s.FS
// dynamically (never capture the pointer): recovery swaps in the
// rebuilt file system under s.mu.
func (s *Server) register() {
	s.Wire.RegisterRaw(ProcOpen, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		res, err := s.logApply(h, fs.Record{Op: fs.OpOpen, Path: path})
		if err != nil {
			return err
		}
		rep.Int64(int64(res.FD))
		return nil
	})
	s.Wire.RegisterRaw(ProcCreate, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		res, err := s.logApply(h, fs.Record{Op: fs.OpCreate, Path: path})
		if err != nil {
			return err
		}
		rep.Int64(int64(res.FD))
		return nil
	})
	s.Wire.RegisterRaw(ProcClose, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		fd := a.Int64()
		if err := a.Err(); err != nil {
			return err
		}
		_, err := s.logApply(h, fs.Record{Op: fs.OpClose, FD: int(fd)})
		return err
	})
	s.Wire.RegisterRaw(ProcRead, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		fd, n := a.Int64(), a.Int64()
		if err := a.Err(); err != nil {
			return err
		}
		res, err := s.logApply(h, fs.Record{Op: fs.OpRead, FD: int(fd), N: int(n)})
		if err != nil {
			return err
		}
		rep.Bytes(res.Data)
		return nil
	})
	s.Wire.RegisterRaw(ProcWrite, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		fd := a.Int64()
		// The cursor's view expires when this handler returns, but the
		// WAL retains the record as stable storage — copy the payload
		// out of the call frame before logging it.
		data := append([]byte(nil), a.Bytes()...)
		if err := a.Err(); err != nil {
			return err
		}
		res, err := s.logApply(h, fs.Record{Op: fs.OpWrite, FD: int(fd), Data: data})
		if err != nil {
			return err
		}
		rep.Int64(int64(res.N))
		return nil
	})
	s.Wire.RegisterRaw(ProcMkdir, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		_, err := s.logApply(h, fs.Record{Op: fs.OpMkdir, Path: path})
		return err
	})
	s.Wire.RegisterRaw(ProcUnlink, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		_, err := s.logApply(h, fs.Record{Op: fs.OpUnlink, Path: path})
		return err
	})
	s.Wire.RegisterRaw(ProcStat, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		st, err := s.FS.Stat(path)
		if err != nil {
			return err
		}
		rep.Uint64(st.Ino)
		rep.Int64(int64(st.Kind))
		rep.Int64(int64(st.Size))
		rep.Int64(int64(st.Blocks))
		rep.Int64(int64(st.Nlink))
		return nil
	})
	s.Wire.RegisterRaw(ProcReadDir, func(h wire.Header, a *wire.Args, rep *wire.Reply) error {
		path := a.String()
		if err := a.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		names, err := s.FS.ReadDir(path)
		if err != nil {
			return err
		}
		for _, n := range names {
			rep.String(n)
		}
		return nil
	})
}

// Remote is the decomposed arrangement's client: every operation is an
// RPC to the user-level server. A Remote built by Cluster.NewClient
// spans a replica set instead of a single server: calls go through a
// failover client that retries against a promoted backup when the
// primary is permanently gone.
type Remote struct {
	client *wire.Client
	server *Server
	link   *wire.Link
	cm     *kernel.CostModel

	// Replicated mode (nil for the single-server arrangement): fo is
	// the multi-endpoint wire caller, cluster the control plane behind
	// its failover decisions.
	fo      *wire.FailoverClient
	cluster *Cluster

	// rec, when non-nil, receives per-operation latency observations
	// (classes "fsserver.op" and this client's LatencyClass). The wire
	// layers below pick the recorder up from the link themselves.
	rec *obs.Recorder

	// br, when non-nil, is the overload circuit breaker (EnableBreaker):
	// repeated ErrOverloaded answers trip it, and while it is open ops
	// fail fast and locally as ErrDegraded.
	br *breaker

	stats Stats
}

// NewRemote builds the decomposed arrangement: a server on one end of a
// fresh link, a client on the other, costs priced by cm.
func NewRemote(fsys *fs.FS, cm *kernel.CostModel) *Remote {
	// A local cross-address-space link: latency is the kernel path, not
	// an Ethernet, so the wire itself is free; the transfer costs are
	// charged explicitly below.
	link := wire.NewLink(ipc.NetworkConfig{Name: "local", BandwidthMbps: 1e6, PerPacketLatencyMicros: 0})
	return NewRemoteOnLink(fsys, cm, link)
}

// NewRemoteOnLink builds the decomposed arrangement over a caller-
// provided link (tests inject faults through it; a cross-machine
// arrangement passes an Ethernet-class link). The client is tuned for
// service traffic: generous retries so probabilistic fault planes are
// survivable, bounded by whatever deadline budget Tune installs.
func NewRemoteOnLink(fsys *fs.FS, cm *kernel.CostModel, link *wire.Link) *Remote {
	client := wire.NewClient(link, wire.A)
	client.MaxRetries = 32
	return &Remote{
		client: client,
		server: NewServer(fsys, link, wire.B),
		link:   link,
		cm:     cm,
	}
}

// NewPeer attaches another concurrent client to the same decomposed
// service: a fresh wire client (its own ClientID, receive queue, and
// retransmission state) sharing this Remote's link, server, and cost
// model, with the same tuning. Each Remote must be driven by one
// goroutine; any number of peers may issue operations concurrently —
// the wire server's sharded reply cache keeps every caller in the
// at-most-once window.
func (r *Remote) NewPeer() *Remote {
	if r.cluster != nil {
		peer := r.cluster.NewClient()
		peer.fo.Tune(r.client.MaxRetries, r.client.DeadlineMicros)
		peer.rec = r.rec
		return peer
	}
	client := wire.NewClient(r.link, wire.A)
	client.MaxRetries = r.client.MaxRetries
	client.DeadlineMicros = r.client.DeadlineMicros
	return &Remote{
		client: client,
		server: r.server,
		link:   r.link,
		cm:     r.cm,
		rec:    r.rec,
	}
}

// SetRecorder attaches an observability recorder to this Remote's
// service-level latency observations and to the shared link beneath it
// (so the wire client, server, and fault decisions trace into the same
// stream). Nil disables. Peers created afterwards inherit it; attach
// before issuing traffic.
func (r *Remote) SetRecorder(rec *obs.Recorder) {
	r.rec = rec
	r.br.setRecorder(rec)
	if r.cluster != nil {
		r.cluster.SetRecorder(rec)
		return
	}
	r.link.SetRecorder(rec)
}

// LatencyClass is the histogram class this Remote's per-operation
// latencies are observed under — one class per wire client, so a
// many-client experiment reads per-client percentiles out of one
// recorder.
func (r *Remote) LatencyClass() string {
	return fmt.Sprintf("fsserver.op.c%02d", r.client.ClientID)
}

// Tune adjusts the transport budget of the decomposed arrangement: the
// retransmission bound and the per-call virtual-time deadline (0 keeps
// calls unbounded). A call that exhausts either budget surfaces as
// ErrUnavailable rather than wedging the caller.
func (r *Remote) Tune(maxRetries int, deadlineMicros float64) {
	if r.fo != nil {
		r.fo.Tune(maxRetries, deadlineMicros)
		return
	}
	r.client.MaxRetries = maxRetries
	r.client.DeadlineMicros = deadlineMicros
}

// SetExpiry installs this client's absolute virtual-time deadline (µs,
// 0 clears): propagated in every call header for the server's
// deadline-aware shedding, and enforced locally before every
// (re)transmission. Callers running against a per-op SLA re-stamp it
// before each op.
func (r *Remote) SetExpiry(micros float64) {
	if r.fo != nil {
		r.fo.SetExpiry(micros)
		return
	}
	r.client.Expiry = micros
}

// SetBudget installs the retry budget retransmissions are paid from
// (nil clears). Peers may share one budget — the per-process
// formulation that stops N clients amplifying an overloaded server.
func (r *Remote) SetBudget(b *wire.RetryBudget) {
	if r.fo != nil {
		r.fo.SetBudget(b)
		return
	}
	r.client.Budget = b
}

// EnableBreaker arms the overload circuit breaker: threshold
// consecutive ErrOverloaded answers open it, and while open every op
// fails fast as ErrDegraded for a cooldown of cooldownMicros scaled by
// a seeded per-client jitter draw; the first op after the cooldown
// probes the service and its outcome closes or re-opens the breaker.
// threshold <= 0 disarms.
func (r *Remote) EnableBreaker(threshold int, cooldownMicros float64) {
	if threshold <= 0 {
		r.br = nil
		return
	}
	r.br = newBreaker(threshold, cooldownMicros, r.client.ClientID)
	r.br.setRecorder(r.rec)
}

// ErrRemote adapts remote failures.
var ErrRemote = errors.New("fsserver: remote error")

// ErrUnavailable reports an operation abandoned because the transport
// exhausted its retry or deadline budget — frames lost faster than the
// budget could recover. The operation may or may not have executed on
// the server; at-most-once semantics guarantee only that it executed
// no more than once. Overload refusals are NOT folded in here: they
// surface as the typed ErrOverloaded (the server shed the op) or
// ErrDegraded (this client's breaker refused to send it), each with
// its own counter, because "the wire lost it" and "the service
// declined it" call for opposite reactions — retry elsewhere versus
// back off.
var ErrUnavailable = errors.New("fsserver: service unavailable")

// ErrOverloaded reports an operation the service refused under
// overload: every attempt was shed by admission control, or the op's
// expiry passed before it could be (re)sent. On a clean wire the op
// provably did not execute — nothing ran, nothing was logged.
var ErrOverloaded = errors.New("fsserver: service overloaded")

// ErrDegraded reports an operation failed fast and locally by the
// circuit breaker: the service shed so many consecutive ops that this
// client stopped asking for the duration of a seeded cooldown. The op
// was never marshalled or transmitted.
var ErrDegraded = errors.New("fsserver: service degraded (breaker open)")

// breakerFastFail consults the breaker before an op touches the wire;
// a true return means the op must fail fast as ErrDegraded.
func (r *Remote) breakerFastFail() bool {
	if r.br == nil || r.br.allow(r.link.Clock()) {
		return false
	}
	r.stats.Ops++
	r.stats.BreakerFastFails++
	return true
}

// mapCallError folds one concluded call's failure into the service
// error taxonomy and feeds the breaker: a RemoteError proves the
// service alive (it executed and said no) and closes the breaker; an
// overload refusal counts toward tripping it; everything else is the
// transport failing, which says nothing about the server's admission
// queues.
func (r *Remote) mapCallError(err error) error {
	var remote *wire.RemoteError
	if errors.As(err, &remote) {
		if r.br != nil {
			r.br.onAlive()
		}
		return fmt.Errorf("%w: %s", ErrRemote, remote.Msg)
	}
	if errors.Is(err, wire.ErrOverloaded) {
		r.stats.OverloadedOps++
		if r.br != nil {
			r.br.onOverload(r.link.Clock())
			r.stats.BreakerOpens = r.br.opens
		}
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	r.stats.DegradedOps++
	if r.br != nil {
		r.br.onOther()
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

func (r *Remote) call(proc uint32, args ...interface{}) ([]interface{}, error) {
	if r.breakerFastFail() {
		return nil, ErrDegraded
	}
	if r.cluster != nil {
		// The replicated call path doubles as the cluster's heartbeat:
		// virtual-clock-paced maintenance (deposed-primary rejoin, the
		// anti-entropy scrub) runs here, synchronously, so same-seed
		// soaks stay byte-identical. A no-op until EnableSelfHeal.
		r.cluster.Tick()
	}
	r.stats.Ops++
	// "Each invocation of an operating system service via an RPC
	// requires at least two system calls and two context switches."
	r.stats.Syscalls += 2
	r.stats.ASSwitches += 2
	opMicros := 2*r.cm.SyscallMicros() + 2*r.cm.AddressSpaceSwitchMicros()
	r.stats.VirtualMicros += opMicros
	before := r.link.Clock()
	var out []interface{}
	var err error
	if r.fo != nil {
		out, err = r.fo.Call(proc, args...)
	} else {
		out, err = r.client.Call(r.server.Wire, proc, args...)
	}
	r.stats.WireMicros += r.link.Clock() - before
	r.stats.VirtualMicros += r.link.Clock() - before
	if r.rec.Enabled() && err == nil {
		opMicros += r.link.Clock() - before
		r.rec.Observe("fsserver.op", opMicros)
		r.rec.Observe(r.LatencyClass(), opMicros)
	}
	if err != nil {
		return nil, r.mapCallError(err)
	}
	if r.br != nil {
		r.br.onAlive()
	}
	return out, nil
}

// callRaw drives one operation through the pooled raw call path — the
// decomposed arrangement's hot path against a single server. The
// accounting (2 syscalls + 2 address-space switches, wire time on the
// virtual clock) and the error contract are identical to call; only the
// marshalling changes, from boxed []interface{} to in-place frames.
// The replicated arrangement (r.fo != nil) keeps the boxed path: the
// failover client owns retry routing across endpoints, and the two
// generations share one wire format, so the server side serves both.
func (r *Remote) callRaw(proc uint32, w *wire.CallArgs) (wire.Args, error) {
	if r.breakerFastFail() {
		w.Abandon()
		return wire.Args{}, ErrDegraded
	}
	r.stats.Ops++
	r.stats.Syscalls += 2
	r.stats.ASSwitches += 2
	opMicros := 2*r.cm.SyscallMicros() + 2*r.cm.AddressSpaceSwitchMicros()
	r.stats.VirtualMicros += opMicros
	before := r.link.Clock()
	res, err := r.client.CallRaw(r.server.Wire, proc, w)
	r.stats.WireMicros += r.link.Clock() - before
	r.stats.VirtualMicros += r.link.Clock() - before
	if r.rec.Enabled() && err == nil {
		opMicros += r.link.Clock() - before
		r.rec.Observe("fsserver.op", opMicros)
		r.rec.Observe(r.LatencyClass(), opMicros)
	}
	if err != nil {
		return wire.Args{}, r.mapCallError(err)
	}
	if r.br != nil {
		r.br.onAlive()
	}
	return res, nil
}

// resultFault folds a poisoned result cursor — a reply whose shape the
// stub could not decode — into the transport-failure contract: one
// typed ErrUnavailable, one degraded-op count, same as call.
func (r *Remote) resultFault(res *wire.Args) error {
	if err := res.Err(); err != nil {
		r.stats.DegradedOps++
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

func (r *Remote) Open(path string) (int, error) {
	if r.fo != nil {
		out, err := r.call(ProcOpen, path)
		if err != nil {
			return -1, err
		}
		return int(out[0].(int64)), nil
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcOpen, w)
	if err != nil {
		return -1, err
	}
	fd := int(res.Int64())
	if err := r.resultFault(&res); err != nil {
		return -1, err
	}
	return fd, nil
}

func (r *Remote) Create(path string) (int, error) {
	if r.fo != nil {
		out, err := r.call(ProcCreate, path)
		if err != nil {
			return -1, err
		}
		return int(out[0].(int64)), nil
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcCreate, w)
	if err != nil {
		return -1, err
	}
	fd := int(res.Int64())
	if err := r.resultFault(&res); err != nil {
		return -1, err
	}
	return fd, nil
}

func (r *Remote) Close(fd int) error {
	if r.fo != nil {
		_, err := r.call(ProcClose, int64(fd))
		return err
	}
	w := r.client.NewCallArgs()
	w.Int64(int64(fd))
	res, err := r.callRaw(ProcClose, w)
	if err != nil {
		return err
	}
	return r.resultFault(&res)
}

func (r *Remote) Read(fd, n int) ([]byte, error) {
	if r.fo != nil {
		out, err := r.call(ProcRead, int64(fd), int64(n))
		if err != nil {
			return nil, err
		}
		data := out[0].([]byte)
		r.stats.PayloadBytes += int64(len(data))
		return data, nil
	}
	w := r.client.NewCallArgs()
	w.Int64(int64(fd))
	w.Int64(int64(n))
	res, err := r.callRaw(ProcRead, w)
	if err != nil {
		return nil, err
	}
	// The returned slice views the delivered reply frame — which is
	// never reused — so the read path moves the payload client-side
	// with zero copies.
	data := res.Bytes()
	if err := r.resultFault(&res); err != nil {
		return nil, err
	}
	r.stats.PayloadBytes += int64(len(data))
	return data, nil
}

func (r *Remote) Write(fd int, data []byte) (int, error) {
	r.stats.PayloadBytes += int64(len(data))
	if r.fo != nil {
		out, err := r.call(ProcWrite, int64(fd), data)
		if err != nil {
			return 0, err
		}
		return int(out[0].(int64)), nil
	}
	w := r.client.NewCallArgs()
	w.Int64(int64(fd))
	w.Bytes(data)
	res, err := r.callRaw(ProcWrite, w)
	if err != nil {
		return 0, err
	}
	n := int(res.Int64())
	if err := r.resultFault(&res); err != nil {
		return 0, err
	}
	return n, nil
}

func (r *Remote) Stat(path string) (fs.Stat, error) {
	if r.fo != nil {
		out, err := r.call(ProcStat, path)
		if err != nil {
			return fs.Stat{}, err
		}
		return fs.Stat{
			Ino:    out[0].(uint64),
			Kind:   fs.FileKind(out[1].(int64)),
			Size:   int(out[2].(int64)),
			Blocks: int(out[3].(int64)),
			Nlink:  int(out[4].(int64)),
		}, nil
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcStat, w)
	if err != nil {
		return fs.Stat{}, err
	}
	st := fs.Stat{
		Ino:    res.Uint64(),
		Kind:   fs.FileKind(res.Int64()),
		Size:   int(res.Int64()),
		Blocks: int(res.Int64()),
		Nlink:  int(res.Int64()),
	}
	if err := r.resultFault(&res); err != nil {
		return fs.Stat{}, err
	}
	return st, nil
}

func (r *Remote) Mkdir(path string) error {
	if r.fo != nil {
		_, err := r.call(ProcMkdir, path)
		return err
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcMkdir, w)
	if err != nil {
		return err
	}
	return r.resultFault(&res)
}

func (r *Remote) Unlink(path string) error {
	if r.fo != nil {
		_, err := r.call(ProcUnlink, path)
		return err
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcUnlink, w)
	if err != nil {
		return err
	}
	return r.resultFault(&res)
}

func (r *Remote) ReadDir(path string) ([]string, error) {
	if r.fo != nil {
		out, err := r.call(ProcReadDir, path)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(out))
		for i, v := range out {
			names[i] = v.(string)
		}
		return names, nil
	}
	w := r.client.NewCallArgs()
	w.String(path)
	res, err := r.callRaw(ProcReadDir, w)
	if err != nil {
		return nil, err
	}
	var names []string
	for res.More() {
		names = append(names, res.String())
	}
	if err := r.resultFault(&res); err != nil {
		return nil, err
	}
	return names, nil
}

// Stats reports the accumulated costs, including the merged transport
// counters of both ends of the link. When several peers share the
// service, the server-side counters (Served, DuplicatesSuppressed,
// BadFrames, …) cover all of them; the client-side counters (Retries,
// BackoffMicros, DeadlineExceeded) are this Remote's own.
func (r *Remote) Stats() Stats {
	s := r.stats
	if r.cluster != nil {
		serverStats := r.cluster.serverWireStats()
		s.Wire = r.fo.Stats().Add(serverStats)
		s.ServerRejected = serverStats.BadFrames
		s.CrashesInjected = serverStats.Crashes
		s.Recoveries, s.RecoveryReplayedOps = r.cluster.primary.Recoveries()
		return s
	}
	serverStats := r.server.Wire.Stats()
	s.Wire = r.client.Stats().Add(serverStats)
	s.ServerRejected = serverStats.BadFrames
	s.CrashesInjected = serverStats.Crashes
	s.Recoveries, s.RecoveryReplayedOps = r.server.Recoveries()
	return s
}

// SetCrashPlane arms the decomposed server with a crash schedule (all
// three windows: receive, pre-apply, pre-reply). Peers share the
// server, so one plane covers them all. Nil disarms.
func (r *Remote) SetCrashPlane(c faultplane.Crasher) { r.server.SetCrasher(c) }

// Crash kills the server now; it recovers from the WAL on the next
// operation.
func (r *Remote) Crash() { r.server.Crash() }

// ServerFS returns the service's live file system. After recoveries
// this is the rebuilt instance — end-state checks (fingerprints) must
// read it here, not through the FS the service was constructed with.
// In replicated mode it is the active replica's file system: the
// promoted backup's after a failover.
func (r *Remote) ServerFS() *fs.FS {
	if r.cluster != nil {
		return r.cluster.ActiveFS()
	}
	return r.server.CurrentFS()
}

// Cluster returns the replica control plane behind this Remote, nil for
// the single-server arrangement.
func (r *Remote) Cluster() *Cluster { return r.cluster }
