// Package fsserver runs the fs file system as an operating-system
// service under the paper's two structures, for real: the monolithic
// arrangement invokes it directly (one system call per operation), and
// the decomposed arrangement marshals every operation through the
// ipc/wire transport to a user-level server (one RPC = two system calls
// + two address-space switches per operation, plus stub and transport
// work on actual bytes). Replaying the same file script against both
// produces, mechanically, the cost multiplication that Table 7 counts.
package fsserver

import (
	"errors"
	"fmt"

	"archos/internal/fs"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
	"archos/internal/obs"
)

// Procedure numbers of the file service.
const (
	ProcOpen uint32 = iota + 1
	ProcCreate
	ProcClose
	ProcRead
	ProcWrite
	ProcStat
	ProcMkdir
	ProcUnlink
	ProcReadDir
)

// Service is the client-facing file interface; both arrangements
// implement it.
type Service interface {
	Open(path string) (int, error)
	Create(path string) (int, error)
	Close(fd int) error
	Read(fd, n int) ([]byte, error)
	Write(fd int, data []byte) (int, error)
	Stat(path string) (fs.Stat, error)
	Mkdir(path string) error
	Unlink(path string) error
	ReadDir(path string) ([]string, error)

	// Stats reports operations performed and the virtual time charged.
	Stats() Stats
}

// Stats accumulates a client's costs.
type Stats struct {
	Ops            int64
	Syscalls       int64
	ASSwitches     int64
	VirtualMicros  float64 // OS-primitive + transport time
	WireMicros     float64 // portion on the (local) wire, remote case
	PayloadBytes   int64   // marshalled bytes, remote case
	ServerRejected int     // frames the server's checksum rejected
	DegradedOps    int     // ops that returned ErrUnavailable instead of wedging

	// Wire is the merged client+server transport counter set (remote
	// case): retries, duplicates suppressed, bad frames, backoff time.
	Wire wire.Stats
}

// ---- Monolithic arrangement ----

// Direct invokes the file system in the kernel: one system call per
// operation.
type Direct struct {
	FS *fs.FS
	cm *kernel.CostModel

	stats Stats
}

// NewDirect builds the monolithic arrangement over fsys, pricing each
// operation with cm's system-call cost.
func NewDirect(fsys *fs.FS, cm *kernel.CostModel) *Direct {
	return &Direct{FS: fsys, cm: cm}
}

func (d *Direct) charge() {
	d.stats.Ops++
	d.stats.Syscalls++
	d.stats.VirtualMicros += d.cm.SyscallMicros()
}

func (d *Direct) Open(path string) (int, error)   { d.charge(); return d.FS.Open(path) }
func (d *Direct) Create(path string) (int, error) { d.charge(); return d.FS.Create(path) }
func (d *Direct) Close(fd int) error              { d.charge(); return d.FS.Close(fd) }
func (d *Direct) Mkdir(path string) error         { d.charge(); return d.FS.Mkdir(path) }
func (d *Direct) Unlink(path string) error        { d.charge(); return d.FS.Unlink(path) }
func (d *Direct) Stat(path string) (fs.Stat, error) {
	d.charge()
	return d.FS.Stat(path)
}
func (d *Direct) ReadDir(path string) ([]string, error) { d.charge(); return d.FS.ReadDir(path) }

func (d *Direct) Read(fd, n int) ([]byte, error) {
	d.charge()
	buf := make([]byte, n)
	c, err := d.FS.Read(fd, buf)
	return buf[:c], err
}

func (d *Direct) Write(fd int, data []byte) (int, error) {
	d.charge()
	return d.FS.Write(fd, data)
}

// Stats reports the accumulated costs.
func (d *Direct) Stats() Stats { return d.stats }

// ---- Decomposed arrangement ----

// Server wraps a file system behind wire RPC handlers.
type Server struct {
	FS   *fs.FS
	Wire *wire.Server
}

// NewServer registers the file service on side of link.
func NewServer(fsys *fs.FS, link *wire.Link, side wire.Endpoint) *Server {
	s := &Server{FS: fsys, Wire: wire.NewServer(link, side)}
	s.register()
	return s
}

func (s *Server) register() {
	f := s.FS
	s.Wire.Register(ProcOpen, func(a []interface{}) ([]interface{}, error) {
		fd, err := f.Open(a[0].(string))
		return []interface{}{int64(fd)}, err
	})
	s.Wire.Register(ProcCreate, func(a []interface{}) ([]interface{}, error) {
		fd, err := f.Create(a[0].(string))
		return []interface{}{int64(fd)}, err
	})
	s.Wire.Register(ProcClose, func(a []interface{}) ([]interface{}, error) {
		return nil, f.Close(int(a[0].(int64)))
	})
	s.Wire.Register(ProcRead, func(a []interface{}) ([]interface{}, error) {
		buf := make([]byte, int(a[1].(int64)))
		n, err := f.Read(int(a[0].(int64)), buf)
		return []interface{}{buf[:n]}, err
	})
	s.Wire.Register(ProcWrite, func(a []interface{}) ([]interface{}, error) {
		n, err := f.Write(int(a[0].(int64)), a[1].([]byte))
		return []interface{}{int64(n)}, err
	})
	s.Wire.Register(ProcStat, func(a []interface{}) ([]interface{}, error) {
		st, err := f.Stat(a[0].(string))
		if err != nil {
			return nil, err
		}
		return []interface{}{st.Ino, int64(st.Kind), int64(st.Size), int64(st.Blocks), int64(st.Nlink)}, nil
	})
	s.Wire.Register(ProcMkdir, func(a []interface{}) ([]interface{}, error) {
		return nil, f.Mkdir(a[0].(string))
	})
	s.Wire.Register(ProcUnlink, func(a []interface{}) ([]interface{}, error) {
		return nil, f.Unlink(a[0].(string))
	})
	s.Wire.Register(ProcReadDir, func(a []interface{}) ([]interface{}, error) {
		names, err := f.ReadDir(a[0].(string))
		if err != nil {
			return nil, err
		}
		out := make([]interface{}, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})
}

// Remote is the decomposed arrangement's client: every operation is an
// RPC to the user-level server.
type Remote struct {
	client *wire.Client
	server *Server
	link   *wire.Link
	cm     *kernel.CostModel

	// rec, when non-nil, receives per-operation latency observations
	// (classes "fsserver.op" and this client's LatencyClass). The wire
	// layers below pick the recorder up from the link themselves.
	rec *obs.Recorder

	stats Stats
}

// NewRemote builds the decomposed arrangement: a server on one end of a
// fresh link, a client on the other, costs priced by cm.
func NewRemote(fsys *fs.FS, cm *kernel.CostModel) *Remote {
	// A local cross-address-space link: latency is the kernel path, not
	// an Ethernet, so the wire itself is free; the transfer costs are
	// charged explicitly below.
	link := wire.NewLink(ipc.NetworkConfig{Name: "local", BandwidthMbps: 1e6, PerPacketLatencyMicros: 0})
	return NewRemoteOnLink(fsys, cm, link)
}

// NewRemoteOnLink builds the decomposed arrangement over a caller-
// provided link (tests inject faults through it; a cross-machine
// arrangement passes an Ethernet-class link). The client is tuned for
// service traffic: generous retries so probabilistic fault planes are
// survivable, bounded by whatever deadline budget Tune installs.
func NewRemoteOnLink(fsys *fs.FS, cm *kernel.CostModel, link *wire.Link) *Remote {
	client := wire.NewClient(link, wire.A)
	client.MaxRetries = 32
	return &Remote{
		client: client,
		server: NewServer(fsys, link, wire.B),
		link:   link,
		cm:     cm,
	}
}

// NewPeer attaches another concurrent client to the same decomposed
// service: a fresh wire client (its own ClientID, receive queue, and
// retransmission state) sharing this Remote's link, server, and cost
// model, with the same tuning. Each Remote must be driven by one
// goroutine; any number of peers may issue operations concurrently —
// the wire server's sharded reply cache keeps every caller in the
// at-most-once window.
func (r *Remote) NewPeer() *Remote {
	client := wire.NewClient(r.link, wire.A)
	client.MaxRetries = r.client.MaxRetries
	client.DeadlineMicros = r.client.DeadlineMicros
	return &Remote{
		client: client,
		server: r.server,
		link:   r.link,
		cm:     r.cm,
		rec:    r.rec,
	}
}

// SetRecorder attaches an observability recorder to this Remote's
// service-level latency observations and to the shared link beneath it
// (so the wire client, server, and fault decisions trace into the same
// stream). Nil disables. Peers created afterwards inherit it; attach
// before issuing traffic.
func (r *Remote) SetRecorder(rec *obs.Recorder) {
	r.rec = rec
	r.link.SetRecorder(rec)
}

// LatencyClass is the histogram class this Remote's per-operation
// latencies are observed under — one class per wire client, so a
// many-client experiment reads per-client percentiles out of one
// recorder.
func (r *Remote) LatencyClass() string {
	return fmt.Sprintf("fsserver.op.c%02d", r.client.ClientID)
}

// Tune adjusts the transport budget of the decomposed arrangement: the
// retransmission bound and the per-call virtual-time deadline (0 keeps
// calls unbounded). A call that exhausts either budget surfaces as
// ErrUnavailable rather than wedging the caller.
func (r *Remote) Tune(maxRetries int, deadlineMicros float64) {
	r.client.MaxRetries = maxRetries
	r.client.DeadlineMicros = deadlineMicros
}

// ErrRemote adapts remote failures.
var ErrRemote = errors.New("fsserver: remote error")

// ErrUnavailable reports an operation abandoned because the transport
// exhausted its retry or deadline budget — the decomposed service's
// graceful-degradation signal. The operation may or may not have
// executed on the server; at-most-once semantics guarantee only that it
// executed no more than once.
var ErrUnavailable = errors.New("fsserver: service unavailable")

func (r *Remote) call(proc uint32, args ...interface{}) ([]interface{}, error) {
	r.stats.Ops++
	// "Each invocation of an operating system service via an RPC
	// requires at least two system calls and two context switches."
	r.stats.Syscalls += 2
	r.stats.ASSwitches += 2
	opMicros := 2*r.cm.SyscallMicros() + 2*r.cm.AddressSpaceSwitchMicros()
	r.stats.VirtualMicros += opMicros
	before := r.link.Clock()
	out, err := r.client.Call(r.server.Wire, proc, args...)
	r.stats.WireMicros += r.link.Clock() - before
	r.stats.VirtualMicros += r.link.Clock() - before
	if r.rec.Enabled() && err == nil {
		opMicros += r.link.Clock() - before
		r.rec.Observe("fsserver.op", opMicros)
		r.rec.Observe(r.LatencyClass(), opMicros)
	}
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("%w: %s", ErrRemote, remote.Msg)
		}
		if errors.Is(err, wire.ErrCallFailed) || errors.Is(err, wire.ErrDeadlineExceeded) {
			r.stats.DegradedOps++
			return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
		return nil, err
	}
	return out, nil
}

func (r *Remote) Open(path string) (int, error) {
	out, err := r.call(ProcOpen, path)
	if err != nil {
		return -1, err
	}
	return int(out[0].(int64)), nil
}

func (r *Remote) Create(path string) (int, error) {
	out, err := r.call(ProcCreate, path)
	if err != nil {
		return -1, err
	}
	return int(out[0].(int64)), nil
}

func (r *Remote) Close(fd int) error {
	_, err := r.call(ProcClose, int64(fd))
	return err
}

func (r *Remote) Read(fd, n int) ([]byte, error) {
	out, err := r.call(ProcRead, int64(fd), int64(n))
	if err != nil {
		return nil, err
	}
	data := out[0].([]byte)
	r.stats.PayloadBytes += int64(len(data))
	return data, nil
}

func (r *Remote) Write(fd int, data []byte) (int, error) {
	r.stats.PayloadBytes += int64(len(data))
	out, err := r.call(ProcWrite, int64(fd), data)
	if err != nil {
		return 0, err
	}
	return int(out[0].(int64)), nil
}

func (r *Remote) Stat(path string) (fs.Stat, error) {
	out, err := r.call(ProcStat, path)
	if err != nil {
		return fs.Stat{}, err
	}
	return fs.Stat{
		Ino:    out[0].(uint64),
		Kind:   fs.FileKind(out[1].(int64)),
		Size:   int(out[2].(int64)),
		Blocks: int(out[3].(int64)),
		Nlink:  int(out[4].(int64)),
	}, nil
}

func (r *Remote) Mkdir(path string) error {
	_, err := r.call(ProcMkdir, path)
	return err
}

func (r *Remote) Unlink(path string) error {
	_, err := r.call(ProcUnlink, path)
	return err
}

func (r *Remote) ReadDir(path string) ([]string, error) {
	out, err := r.call(ProcReadDir, path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(out))
	for i, v := range out {
		names[i] = v.(string)
	}
	return names, nil
}

// Stats reports the accumulated costs, including the merged transport
// counters of both ends of the link. When several peers share the
// service, the server-side counters (Served, DuplicatesSuppressed,
// BadFrames, …) cover all of them; the client-side counters (Retries,
// BackoffMicros, DeadlineExceeded) are this Remote's own.
func (r *Remote) Stats() Stats {
	s := r.stats
	s.Wire = r.client.Stats().Add(r.server.Wire.Stats())
	s.ServerRejected = r.server.Wire.Stats().BadFrames
	return s
}
