package fsserver

import (
	"bytes"
	"errors"
	"testing"

	"archos/internal/arch"
	"archos/internal/fs"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
)

func arrangements(t *testing.T) map[string]Service {
	t.Helper()
	cm := kernel.NewCostModel(arch.R3000)
	return map[string]Service{
		"direct": NewDirect(fs.New(256), cm),
		"remote": NewRemote(fs.New(256), cm),
	}
}

func TestServiceConformance(t *testing.T) {
	for name, svc := range arrangements(t) {
		t.Run(name, func(t *testing.T) {
			if err := svc.Mkdir("/d"); err != nil {
				t.Fatal(err)
			}
			fd, err := svc.Create("/d/f")
			if err != nil {
				t.Fatal(err)
			}
			if n, err := svc.Write(fd, []byte("decomposed")); err != nil || n != 10 {
				t.Fatalf("write: %d %v", n, err)
			}
			if err := svc.Close(fd); err != nil {
				t.Fatal(err)
			}
			fd, err = svc.Open("/d/f")
			if err != nil {
				t.Fatal(err)
			}
			data, err := svc.Read(fd, 64)
			if err != nil || !bytes.Equal(data, []byte("decomposed")) {
				t.Fatalf("read: %q %v", data, err)
			}
			if err := svc.Close(fd); err != nil {
				t.Fatal(err)
			}
			st, err := svc.Stat("/d/f")
			if err != nil || st.Size != 10 || st.Kind != fs.KindFile {
				t.Fatalf("stat: %+v %v", st, err)
			}
			names, err := svc.ReadDir("/d")
			if err != nil || len(names) != 1 || names[0] != "f" {
				t.Fatalf("readdir: %v %v", names, err)
			}
			if err := svc.Unlink("/d/f"); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Open("/d/f"); err == nil {
				t.Fatal("open after unlink succeeded")
			}
		})
	}
}

func TestRemoteErrorsCrossTheWire(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	r := NewRemote(fs.New(64), cm)
	if _, err := r.Open("/nope"); !errors.Is(err, ErrRemote) {
		t.Errorf("open(/nope) = %v, want a remote error", err)
	}
}

func TestAndrewMiniSameResultBothArrangements(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	dfs, rfs := fs.New(256), fs.New(256)
	direct := NewDirect(dfs, cm)
	remote := NewRemote(rfs, cm)
	script := DefaultAndrewMini()

	opsD, err := script.Run(direct)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	opsR, err := script.Run(remote)
	if err != nil {
		t.Fatalf("remote: %v", err)
	}
	// The script issues the same logical operations under both
	// arrangements, and the file systems end in identical states.
	if opsD != opsR {
		t.Errorf("op counts differ: direct %d, remote %d", opsD, opsR)
	}
	for _, fsys := range []*fs.FS{dfs, rfs} {
		if fsys.OpenFDs() != 0 {
			t.Errorf("leaked %d descriptors", fsys.OpenFDs())
		}
	}
	da, _ := dfs.ReadFile("/src/d00/f00.c")
	ra, _ := rfs.ReadFile("/src/d00/f00.c")
	if !bytes.Equal(da, ra) {
		t.Error("file contents diverge between arrangements")
	}
	if _, err := dfs.Stat("/copy/d00_f00.c"); !errors.Is(err, fs.ErrNotExist) {
		t.Error("cleanup phase left copies behind")
	}
}

func TestDecompositionCostsMoreMechanically(t *testing.T) {
	// The Table 7 effect, produced by running real operations: the
	// decomposed arrangement issues 2 syscalls + 2 AS switches per op
	// and pays marshalling, so its primitive time multiplies.
	cm := kernel.NewCostModel(arch.R3000)
	direct := NewDirect(fs.New(256), cm)
	remote := NewRemote(fs.New(256), cm)
	script := DefaultAndrewMini()
	if _, err := script.Run(direct); err != nil {
		t.Fatal(err)
	}
	if _, err := script.Run(remote); err != nil {
		t.Fatal(err)
	}
	d, r := direct.Stats(), remote.Stats()
	if r.Syscalls != 2*d.Syscalls {
		t.Errorf("remote syscalls %d, want exactly 2x direct's %d", r.Syscalls, d.Syscalls)
	}
	if r.ASSwitches != 2*d.Ops {
		t.Errorf("remote AS switches %d, want 2 per op (%d ops)", r.ASSwitches, d.Ops)
	}
	if d.ASSwitches != 0 {
		t.Errorf("direct arrangement switched address spaces %d times", d.ASSwitches)
	}
	if r.VirtualMicros < 3*d.VirtualMicros {
		t.Errorf("remote primitive time %.0f µs not ≥3x direct's %.0f µs", r.VirtualMicros, d.VirtualMicros)
	}
	if r.PayloadBytes == 0 {
		t.Error("remote arrangement marshalled no payload")
	}
	if r.ServerRejected != 0 {
		t.Errorf("clean link rejected %d frames", r.ServerRejected)
	}
}

func TestScriptIsDeterministic(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	run := func() Stats {
		svc := NewRemote(fs.New(256), cm)
		if _, err := DefaultAndrewMini().Run(svc); err != nil {
			t.Fatal(err)
		}
		return svc.Stats()
	}
	if run() != run() {
		t.Error("script replay not deterministic")
	}
}

func TestBlockCacheVisibleThroughService(t *testing.T) {
	// Re-running the scan phase against a warm cache produces hits —
	// the mechanism behind workload.Spec.Blocks.
	cm := kernel.NewCostModel(arch.R3000)
	fsys := fs.New(1024)
	direct := NewDirect(fsys, cm)
	if _, err := DefaultAndrewMini().Run(direct); err != nil {
		t.Fatal(err)
	}
	hits, misses := fsys.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("cache stats hits=%d misses=%d; expected both nonzero", hits, misses)
	}
	if hits < misses {
		t.Errorf("copy+scan phases should mostly hit a big cache (hits %d < misses %d)", hits, misses)
	}
}

func TestScriptSurvivesWireFaults(t *testing.T) {
	// Corrupt and drop frames mid-script: the transport's checksums and
	// retransmission make the file service come out identical anyway.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(ipc.NetworkConfig{Name: "flaky", BandwidthMbps: 1e6, PerPacketLatencyMicros: 0})
	for _, n := range []int{5, 50, 500, 1500} {
		link.CorruptFrame(n)
	}
	for _, n := range []int{20, 200, 2000} {
		link.DropFrame(n)
	}
	fsys := fs.New(256)
	remote := NewRemoteOnLink(fsys, cm, link)
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatalf("script failed over a flaky link: %v", err)
	}
	st := remote.Stats()
	if st.ServerRejected == 0 {
		t.Error("no frames were rejected — fault injection did not engage")
	}
	// Final state matches a clean run.
	clean := fs.New(256)
	if _, err := DefaultAndrewMini().Run(NewDirect(clean, cm)); err != nil {
		t.Fatal(err)
	}
	a, _ := fsys.ReadFile("/src/d05/f07.c")
	b, _ := clean.ReadFile("/src/d05/f07.c")
	if !bytes.Equal(a, b) {
		t.Error("flaky-link run diverged from the clean run")
	}
}
