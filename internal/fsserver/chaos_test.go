package fsserver

import (
	"bytes"
	"errors"
	"testing"

	"archos/internal/arch"
	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
)

// localNet is the cross-address-space link the decomposed arrangement
// normally runs on (cf. NewRemote).
var localNet = ipc.NetworkConfig{Name: "local", BandwidthMbps: 1e6, PerPacketLatencyMicros: 0}

// cleanMonolithicFingerprint replays the script on the monolithic
// arrangement and returns the resulting file-system state digest.
func cleanMonolithicFingerprint(t *testing.T, cm *kernel.CostModel) string {
	t.Helper()
	clean := fs.New(256)
	if _, err := DefaultAndrewMini().Run(NewDirect(clean, cm)); err != nil {
		t.Fatalf("fault-free monolithic run failed: %v", err)
	}
	return clean.Fingerprint()
}

// chaosRun replays the script on the decomposed arrangement under the
// seeded chaos policy and returns the final state digest plus stats.
func chaosRun(t *testing.T, cm *kernel.CostModel, seed int64) (string, Stats, faultplane.Counts, float64) {
	t.Helper()
	link := wire.NewLink(localNet)
	plane := faultplane.New(faultplane.Chaos(seed))
	link.SetFaultPlane(plane)
	fsys := fs.New(256)
	remote := NewRemoteOnLink(fsys, cm, link)
	if _, err := DefaultAndrewMini().Run(remote); err != nil {
		t.Fatalf("chaos run (seed %d) failed: %v", seed, err)
	}
	if fsys.OpenFDs() != 0 {
		t.Errorf("chaos run leaked %d descriptors", fsys.OpenFDs())
	}
	return fsys.Fingerprint(), remote.Stats(), plane.Counts(), link.Clock()
}

func TestChaosSoakExactlyOnceEffects(t *testing.T) {
	// ≥20% combined loss/duplication/reordering (faultplane.Chaos), a
	// full andrew-mini replay: the decomposed file system must end
	// byte-identical to the fault-free monolithic run — no double-
	// applied writes, no lost acknowledged ops.
	cm := kernel.NewCostModel(arch.R3000)
	want := cleanMonolithicFingerprint(t, cm)
	for _, seed := range []int64{1991, 42, 7} {
		got, st, counts, _ := chaosRun(t, cm, seed)
		if got != want {
			t.Errorf("seed %d: decomposed state diverged from fault-free monolithic state", seed)
		}
		if counts.Dropped == 0 || counts.Duplicated == 0 || counts.Reordered == 0 {
			t.Errorf("seed %d: fault plane injected too little: %+v", seed, counts)
		}
		if st.Wire.Retries == 0 || st.Wire.DuplicatesSuppressed == 0 {
			t.Errorf("seed %d: transport saw no retransmission traffic: %+v", seed, st.Wire)
		}
		if st.DegradedOps != 0 {
			t.Errorf("seed %d: %d ops degraded despite generous retry budget", seed, st.DegradedOps)
		}
	}
}

func TestChaosSoakIsBitReproducible(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	fp1, st1, counts1, clock1 := chaosRun(t, cm, 1991)
	fp2, st2, counts2, clock2 := chaosRun(t, cm, 1991)
	if fp1 != fp2 {
		t.Error("same seed produced different file-system states")
	}
	if st1 != st2 {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", st1, st2)
	}
	if counts1 != counts2 {
		t.Errorf("same seed produced different fault counts:\n%+v\n%+v", counts1, counts2)
	}
	if clock1 != clock2 {
		t.Errorf("same seed produced different virtual clocks: %v vs %v", clock1, clock2)
	}
}

func TestChaosSoakParallelLinks(t *testing.T) {
	// Independent decomposed services under independent fault planes,
	// driven concurrently — the -race configuration of the soak. Each
	// link serialises its own plane; separate services share nothing.
	cm := kernel.NewCostModel(arch.R3000)
	want := cleanMonolithicFingerprint(t, cm)
	type result struct {
		seed int64
		fp   string
		err  error
	}
	seeds := []int64{1, 2, 3, 4}
	results := make(chan result, len(seeds))
	for _, seed := range seeds {
		go func(seed int64) {
			link := wire.NewLink(localNet)
			link.SetFaultPlane(faultplane.New(faultplane.Chaos(seed)))
			fsys := fs.New(256)
			remote := NewRemoteOnLink(fsys, cm, link)
			_, err := DefaultAndrewMini().Run(remote)
			results <- result{seed, fsys.Fingerprint(), err}
		}(seed)
	}
	for range seeds {
		r := <-results
		if r.err != nil {
			t.Errorf("seed %d: %v", r.seed, r.err)
			continue
		}
		if r.fp != want {
			t.Errorf("seed %d: state diverged from fault-free monolithic run", r.seed)
		}
	}
}

func TestExhaustedBudgetDegradesToErrUnavailable(t *testing.T) {
	// Under total loss with a tiny budget the service must fail fast
	// with the typed degradation error and count the degraded op — not
	// wedge or return an anonymous transport error.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	link.SetFaultPlane(faultplane.New(faultplane.Policy{Seed: 5, Loss: 1.0}))
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	remote.Tune(2, 0)
	_, err := remote.Open("/anything")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if st := remote.Stats(); st.DegradedOps != 1 {
		t.Errorf("degraded ops = %d, want 1", st.DegradedOps)
	}

	// Deadline budget, same typed signal.
	link2 := wire.NewLink(ipc.Ethernet10)
	link2.SetFaultPlane(faultplane.New(faultplane.Policy{Seed: 5, Loss: 1.0}))
	remote2 := NewRemoteOnLink(fs.New(64), cm, link2)
	remote2.Tune(1000, 2000)
	_, err = remote2.Open("/anything")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("deadline case: err = %v, want ErrUnavailable", err)
	}
	if st := remote2.Stats(); st.DegradedOps != 1 || st.Wire.DeadlineExceeded != 1 {
		t.Errorf("deadline case: stats = %+v", st)
	}
}

func TestDecomposedWriteSurvivesDroppedReply(t *testing.T) {
	// The at-most-once regression at the service layer: the reply to a
	// non-idempotent Write is lost, the client retransmits, and the
	// server must answer from its reply cache instead of appending the
	// data a second time.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	fsys := fs.New(64)
	remote := NewRemoteOnLink(fsys, cm, link)

	fd, err := remote.Create("/f") // frames 1 (call) + 2 (reply)
	if err != nil {
		t.Fatal(err)
	}
	link.DropFrame(4) // the Write reply
	if _, err := remote.Write(fd, []byte("exactly-once")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Close(fd); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("exactly-once")) {
		t.Errorf("file = %q; a retransmitted write re-executed", data)
	}
	st := remote.Stats()
	if st.Wire.Retries != 1 || st.Wire.DuplicatesSuppressed != 1 {
		t.Errorf("wire stats = %+v, want 1 retry answered from the reply cache", st.Wire)
	}
}

func TestDecomposedWriteSurvivesCorruptCall(t *testing.T) {
	// A corrupted Write call is rejected by the server's checksum; the
	// retransmission carries the operation, which must apply once.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	fsys := fs.New(64)
	remote := NewRemoteOnLink(fsys, cm, link)

	fd, err := remote.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	link.CorruptFrame(3) // the Write call
	if _, err := remote.Write(fd, []byte("checksummed")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Close(fd); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("checksummed")) {
		t.Errorf("file = %q", data)
	}
	st := remote.Stats()
	if st.ServerRejected != 1 {
		t.Errorf("server rejected %d frames, want 1", st.ServerRejected)
	}
	if st.Wire.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Wire.Retries)
	}
}
