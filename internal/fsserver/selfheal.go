package fsserver

import (
	"encoding/binary"
	"fmt"

	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc/wire"
	"archos/internal/obs"
)

// This file is the cluster's self-healing plane: the machinery that
// restores replication factor after the faults PRs 5–9 merely
// survived. Three healing paths share one principle — the primary
// pushes, the healing node never pulls:
//
//   - A transiently killed backup revives through its restart hook
//     (local WAL recovery, quarantining at-rest damage) and re-enters
//     the ack set at its true position; the next ship discovers that
//     position by cursor correction and re-delivers the rest, falling
//     back to whole-snapshot state transfer when the primary's
//     retained log no longer reaches back far enough.
//
//   - A deposed primary learns of its fencing on its first rejected
//     ship, discards the speculative tail it appended after losing
//     primacy, and rejoins as a receiving backup at the new epoch.
//
//   - An anti-entropy scrubber paced by the virtual clock compares
//     per-range state fingerprints across replicas and repairs silent
//     divergence by snapshot push.
//
// Everything is driven synchronously from the client call path
// (Cluster.Tick) — no goroutines, no wall clock — so same-seed soaks
// stay byte-identical.

// SelfHealPolicy parameterises the healing plane. Like ReplicaConfig,
// a policy is programmer-supplied: Validate returns a descriptive
// error and EnableSelfHeal panics on exactly that error.
type SelfHealPolicy struct {
	// RejoinDelayMicros is how long (virtual) after a failover the
	// deposed primary stays fenced out before it is demoted and
	// readmitted as a backup — the stand-in for operator or watchdog
	// reaction time.
	RejoinDelayMicros float64

	// ScrubIntervalMicros paces the anti-entropy pass.
	ScrubIntervalMicros float64

	// ScrubRanges is the fingerprint resolution: how many per-range
	// digests each scrub compares per peer.
	ScrubRanges int
}

// DefaultSelfHealPolicy is the reference healing configuration: rejoin
// after one virtual second, scrub every half virtual second at
// 16-range resolution.
func DefaultSelfHealPolicy() SelfHealPolicy {
	return SelfHealPolicy{RejoinDelayMicros: 1e6, ScrubIntervalMicros: 5e5, ScrubRanges: 16}
}

// Validate checks the policy, returning a descriptive error naming the
// offending field.
func (p SelfHealPolicy) Validate() error {
	if p.RejoinDelayMicros < 0 || p.RejoinDelayMicros != p.RejoinDelayMicros {
		return fmt.Errorf("fsserver: RejoinDelayMicros = %v invalid", p.RejoinDelayMicros)
	}
	if p.ScrubIntervalMicros <= 0 || p.ScrubIntervalMicros != p.ScrubIntervalMicros {
		return fmt.Errorf("fsserver: ScrubIntervalMicros = %v, want a positive interval", p.ScrubIntervalMicros)
	}
	if p.ScrubRanges < 1 {
		return fmt.Errorf("fsserver: ScrubRanges = %d, want >= 1", p.ScrubRanges)
	}
	return nil
}

// EnableSelfHeal arms the healing plane: from now on every client call
// ticks the cluster (rejoin scheduling, scrub pacing). Panics on an
// invalid policy.
func (c *Cluster) EnableSelfHeal(p SelfHealPolicy) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heal = &p
	c.nextScrubAt = c.clock.Clock() + p.ScrubIntervalMicros
}

// SetBackupKillPlane arms backup i with a seeded transient-kill
// schedule on its replication server: ship frames may kill the node,
// the outage window (paced by the cluster clock) keeps it down, and
// the first pump after the window revives it through the rejoin hook.
// Returns the plane for counter inspection.
func (c *Cluster) SetBackupKillPlane(i int, p faultplane.KillPolicy) *faultplane.KillPlane {
	k := faultplane.NewKill(p, c.clock.Clock)
	b := c.backups[i]
	b.Repl.SetCrasher(k)
	b.mu.Lock()
	b.kill = k
	b.mu.Unlock()
	return k
}

// BackupKillCounts returns the kill counters of backup i's plane (zero
// if none armed).
func (c *Cluster) BackupKillCounts(i int) faultplane.KillCounts {
	b := c.backups[i]
	b.mu.Lock()
	k := b.kill
	b.mu.Unlock()
	if k == nil {
		return faultplane.KillCounts{}
	}
	return k.Counts()
}

// SetDiskPlane arms every node with one shared seeded at-rest damage
// schedule, consulted (one draw) each time a node revives. The shared
// stream keeps the fault sequence a function of the revival order,
// which a single-pump drive makes deterministic.
func (c *Cluster) SetDiskPlane(p faultplane.DiskFaultPolicy) *faultplane.DiskPlane {
	d := faultplane.NewDisk(p)
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	for _, b := range c.backups {
		b.mu.Lock()
		b.disk = d
		b.mu.Unlock()
	}
	return d
}

// Demoted returns the deposed primary's receiver role after it has
// rejoined, nil before.
func (c *Cluster) Demoted() *Backup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.demoted
}

// Tick drives the healing plane from the call path: demote-and-rejoin
// the deposed primary once its fencing delay has elapsed, and run the
// anti-entropy scrub when its interval comes due. Called by every
// replicated client op; a no-op until EnableSelfHeal.
func (c *Cluster) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.heal == nil {
		return
	}
	now := c.clock.Clock()
	if c.active != 0 && c.demoted == nil && now >= c.failoverAt+c.heal.RejoinDelayMicros {
		c.rejoinDeposedPrimaryLocked(now)
	}
	if now >= c.nextScrubAt {
		c.scrubLocked()
		c.nextScrubAt = c.clock.Clock() + c.heal.ScrubIntervalMicros
	}
}

// rejoinDeposedPrimaryLocked demotes the dead original primary and
// readmits it as a receiving backup: probe (the first rejected ship —
// how a deposed primary discovers its fencing), discard the
// speculative tail past the promotion point, recover locally through
// the quarantine path, then join the active primary's ack set on a
// fresh replication link and catch up. Caller holds c.mu.
func (c *Cluster) rejoinDeposedPrimaryLocked(now float64) {
	pick := c.active - 1
	np := c.backups[pick]
	p := c.primary
	rec := c.primaryLink.Recorder()

	// The fencing signal: one ship at the old epoch, rejected by the
	// promoted peer. The deposed primary now knows its reign is over.
	p.mu.Lock()
	oldEpoch := p.Wire.Epoch()
	oldRepl := p.repl
	p.mu.Unlock()
	if oldRepl != nil && pick < len(oldRepl.clients) {
		probe, _ := fs.EncodeRecords(nil)
		if _, err := oldRepl.clients[pick].Call(oldRepl.peers[pick], ProcShip, oldEpoch, probe); err != nil {
			c.fencedShips++
		}
	}

	// Demotion: everything past the promotion point is speculation the
	// new primary's history supersedes. If a snapshot folded
	// speculative records in, nothing below it can be kept either —
	// reset and let state transfer rebuild the node.
	np.mu.Lock()
	promotedAt := np.promotedAtSeq
	newEpoch := np.srv.Wire.Epoch()
	np.mu.Unlock()
	var discarded int
	if p.wal.SnapSeq() > promotedAt {
		p.wal.QuarantineSnapshot()
	} else {
		discarded = p.wal.DiscardFrom(promotedAt + 1)
	}
	p.wal.AckShipped(p.wal.LastSeq()) // shipper role is over; drain the buffer

	// Readmission: wrap the old primary's server and log in a receiver
	// role on a fresh replication link, recover what the (possibly
	// damaged) log proves, and hand the node to the active primary's
	// replicator.
	link := wire.NewLinkOnClock(replicaNet, c.clock)
	nb := &Backup{
		Repl: wire.NewServer(link, wire.B),
		wal:  p.wal,
		srv:  p,
		disk: c.disk,
	}
	nb.primaryEpoch = newEpoch
	nb.registerRepl()
	nb.Repl.OnRestart(nb.rejoinNow)
	nb.mu.Lock()
	nb.recoverLocalLocked()
	applied := nb.appliedSeq
	nb.mu.Unlock()
	c.demoted = nb
	c.demotedLink = link
	c.rejoins++

	npSrv := np.srv
	npSrv.mu.Lock()
	rp := npSrv.repl
	if rp != nil {
		ship := wire.NewClient(link, wire.A)
		ship.MaxRetries = c.cfg.AckRetries
		ship.DeadlineMicros = c.cfg.AckTimeoutMicros
		rp.clients = append(rp.clients, ship)
		rp.peers = append(rp.peers, nb.Repl)
		rp.acked = append(rp.acked, applied)
		rp.shipTo(len(rp.clients)-1, npSrv.wal, newEpoch, npSrv.wal.LastSeq(), 0, 0)
	}
	npSrv.mu.Unlock()

	if rec.Enabled() {
		rec.Event("cluster", "demote", 0, 0,
			fmt.Sprintf("discarded=%d applied=%d epoch=%d", discarded, applied, newEpoch))
		rec.Observe("repl.rejoin", now-c.failoverAt)
		rec.Emit(obs.Event{Layer: "cluster", Name: "rejoin", Dur: now - c.failoverAt, Val: float64(applied)})
	}
}

// scrubLocked runs one anti-entropy pass: the active primary compares
// its per-range state fingerprints against every receiving peer that
// is fully caught up (lag is the ship path's job, not divergence) and
// repairs disagreement by folding its state into a fresh snapshot and
// pushing it whole. Caller holds c.mu.
func (c *Cluster) scrubLocked() {
	act := c.activeServerLocked()
	rec := c.primaryLink.Recorder()
	t0 := c.clock.Clock()
	divergent := 0
	act.mu.Lock()
	rp := act.repl
	if rp != nil && len(rp.clients) > 0 {
		n := c.heal.ScrubRanges
		local := act.FS.RangeFingerprints(n)
		last := act.wal.LastSeq()
		epoch := act.Wire.Epoch()
		for i := range rp.clients {
			out, err := rp.clients[i].Call(rp.peers[i], ProcScrub, epoch, uint64(n))
			if err != nil {
				continue // down or deposed; not scrubbed this pass
			}
			applied := out[0].(uint64)
			if applied != last {
				continue // lagging; record shipping heals that
			}
			buf := out[1].([]byte)
			mismatch := 0
			for ri := 0; ri < n && ri*8+8 <= len(buf); ri++ {
				if binary.BigEndian.Uint64(buf[ri*8:]) != local[ri] {
					mismatch++
				}
			}
			if mismatch == 0 {
				continue
			}
			divergent += mismatch
			// Repair: fold the live state into a snapshot and push it
			// whole — deterministic reconvergence regardless of what
			// rotted on the peer.
			if err := act.wal.Snapshot(act.FS); err != nil {
				continue
			}
			if rp.sendSnapshot(i, act.wal, epoch) {
				c.scrubRepairs++
				c.repairedRanges += mismatch
				rec.Observe("repl.repair", float64(mismatch))
			}
		}
	}
	act.mu.Unlock()
	c.scrubPasses++
	if rec.Enabled() {
		now := c.clock.Clock()
		rec.EmitAt(obs.Event{T: now, Layer: "cluster", Name: "scrub",
			Dur: now - t0, Val: float64(divergent)})
	}
}

// NodeFingerprints returns the state fingerprint of every node in the
// cluster — the active filesystem first, then each receiving peer
// (surviving backups plus the rejoined deposed primary). After Quiesce
// all entries must agree: that is the full-replication-factor check a
// soak asserts.
func (c *Cluster) NodeFingerprints() []string {
	fps := []string{c.ActiveFS().Fingerprint()}
	for _, b := range c.receivers() {
		fps = append(fps, b.srv.CurrentFS().Fingerprint())
	}
	return fps
}

// Quiesce drives the cluster to full replication factor at the end of
// a run: force the deposed primary's rejoin if it is still pending,
// ship until every receiving peer has applied the whole log (ship
// retries burn virtual time, so any outage window in the way expires),
// then run a final scrub so silent divergence is repaired before the
// caller asserts fingerprints.
func (c *Cluster) Quiesce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.heal != nil && c.active != 0 && c.demoted == nil {
		c.rejoinDeposedPrimaryLocked(c.clock.Clock())
	}
	act := c.activeServerLocked()
	for attempt := 0; attempt < 64; attempt++ {
		act.mu.Lock()
		rp := act.repl
		var lag uint64
		if rp != nil {
			rp.ship(act.wal, act.Wire.Epoch(), 0, 0)
			lag = rp.lag(act.wal)
		}
		act.mu.Unlock()
		if lag == 0 {
			break
		}
	}
	if c.heal != nil {
		c.scrubLocked()
	}
}
