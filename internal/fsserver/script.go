package fsserver

import (
	"fmt"
	"math/rand"
)

// AndrewMini is a deterministic miniature of the paper's andrew script
// — "a script of file system intensive programs such as copy, compile
// and search" — expressed against the Service interface so the same
// workload runs under both OS arrangements:
//
//	mkdir phase   — build a source tree
//	write phase   — populate files
//	scan phase    — stat + read everything (the "search")
//	copy phase    — read each file, write a copy
//	cleanup phase — unlink the copies
type AndrewMini struct {
	Dirs        int
	FilesPerDir int
	FileBytes   int
	Seed        int64
}

// DefaultAndrewMini is sized to run in milliseconds while exercising
// hundreds of service operations.
func DefaultAndrewMini() AndrewMini {
	return AndrewMini{Dirs: 6, FilesPerDir: 8, FileBytes: 2300, Seed: 1991}
}

// Run replays the script against svc. It returns the number of
// operations issued and fails fast on any service error.
func (a AndrewMini) Run(svc Service) (int64, error) {
	rng := rand.New(rand.NewSource(a.Seed))
	content := make([]byte, a.FileBytes)
	rng.Read(content)

	// mkdir phase.
	if err := svc.Mkdir("/src"); err != nil {
		return 0, err
	}
	for d := 0; d < a.Dirs; d++ {
		if err := svc.Mkdir(dirName(d)); err != nil {
			return 0, err
		}
	}
	// write phase.
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			fd, err := svc.Create(fileName(d, f))
			if err != nil {
				return 0, err
			}
			if _, err := svc.Write(fd, content); err != nil {
				return 0, err
			}
			if err := svc.Close(fd); err != nil {
				return 0, err
			}
		}
	}
	// scan phase: stat and read every file (grep-like pass).
	for d := 0; d < a.Dirs; d++ {
		names, err := svc.ReadDir(dirName(d))
		if err != nil {
			return 0, err
		}
		for _, n := range names {
			path := dirName(d) + "/" + n
			if _, err := svc.Stat(path); err != nil {
				return 0, err
			}
			fd, err := svc.Open(path)
			if err != nil {
				return 0, err
			}
			for {
				chunk, err := svc.Read(fd, 1024)
				if err != nil {
					return 0, err
				}
				if len(chunk) == 0 {
					break
				}
			}
			if err := svc.Close(fd); err != nil {
				return 0, err
			}
		}
	}
	// copy phase.
	if err := svc.Mkdir("/copy"); err != nil {
		return 0, err
	}
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			src, err := svc.Open(fileName(d, f))
			if err != nil {
				return 0, err
			}
			dst, err := svc.Create(copyName(d, f))
			if err != nil {
				return 0, err
			}
			for {
				chunk, err := svc.Read(src, 4096)
				if err != nil {
					return 0, err
				}
				if len(chunk) == 0 {
					break
				}
				if _, err := svc.Write(dst, chunk); err != nil {
					return 0, err
				}
			}
			if err := svc.Close(src); err != nil {
				return 0, err
			}
			if err := svc.Close(dst); err != nil {
				return 0, err
			}
		}
	}
	// cleanup phase.
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			if err := svc.Unlink(copyName(d, f)); err != nil {
				return 0, err
			}
		}
	}
	return svc.Stats().Ops, nil
}

func dirName(d int) string     { return fmt.Sprintf("/src/d%02d", d) }
func fileName(d, f int) string { return fmt.Sprintf("%s/f%02d.c", dirName(d), f) }
func copyName(d, f int) string { return fmt.Sprintf("/copy/d%02d_f%02d.c", d, f) }
