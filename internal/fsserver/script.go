package fsserver

import (
	"fmt"
	"math/rand"
)

// AndrewMini is a deterministic miniature of the paper's andrew script
// — "a script of file system intensive programs such as copy, compile
// and search" — expressed against the Service interface so the same
// workload runs under both OS arrangements:
//
//	mkdir phase   — build a source tree
//	write phase   — populate files
//	scan phase    — stat + read everything (the "search")
//	copy phase    — read each file, write a copy
//	cleanup phase — unlink the copies
type AndrewMini struct {
	Dirs        int
	FilesPerDir int
	FileBytes   int
	Seed        int64

	// Root, when non-empty, prefixes every path the script touches (the
	// directory is created first), so several scripts — one per
	// concurrent client — replay against one file system in disjoint
	// subtrees whose combined final state is interleaving-independent.
	Root string
}

// DefaultAndrewMini is sized to run in milliseconds while exercising
// hundreds of service operations.
func DefaultAndrewMini() AndrewMini {
	return AndrewMini{Dirs: 6, FilesPerDir: 8, FileBytes: 2300, Seed: 1991}
}

// Run replays the script against svc. It returns the number of
// operations issued and fails fast on any service error.
func (a AndrewMini) Run(svc Service) (int64, error) {
	rng := rand.New(rand.NewSource(a.Seed))
	content := make([]byte, a.FileBytes)
	rng.Read(content)

	// mkdir phase.
	if a.Root != "" {
		if err := svc.Mkdir(a.Root); err != nil {
			return 0, err
		}
	}
	if err := svc.Mkdir(a.Root + "/src"); err != nil {
		return 0, err
	}
	for d := 0; d < a.Dirs; d++ {
		if err := svc.Mkdir(a.dirName(d)); err != nil {
			return 0, err
		}
	}
	// write phase.
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			fd, err := svc.Create(a.fileName(d, f))
			if err != nil {
				return 0, err
			}
			if _, err := svc.Write(fd, content); err != nil {
				return 0, err
			}
			if err := svc.Close(fd); err != nil {
				return 0, err
			}
		}
	}
	// scan phase: stat and read every file (grep-like pass).
	for d := 0; d < a.Dirs; d++ {
		names, err := svc.ReadDir(a.dirName(d))
		if err != nil {
			return 0, err
		}
		for _, n := range names {
			path := a.dirName(d) + "/" + n
			if _, err := svc.Stat(path); err != nil {
				return 0, err
			}
			fd, err := svc.Open(path)
			if err != nil {
				return 0, err
			}
			for {
				chunk, err := svc.Read(fd, 1024)
				if err != nil {
					return 0, err
				}
				if len(chunk) == 0 {
					break
				}
			}
			if err := svc.Close(fd); err != nil {
				return 0, err
			}
		}
	}
	// copy phase.
	if err := svc.Mkdir(a.Root + "/copy"); err != nil {
		return 0, err
	}
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			src, err := svc.Open(a.fileName(d, f))
			if err != nil {
				return 0, err
			}
			dst, err := svc.Create(a.copyName(d, f))
			if err != nil {
				return 0, err
			}
			for {
				chunk, err := svc.Read(src, 4096)
				if err != nil {
					return 0, err
				}
				if len(chunk) == 0 {
					break
				}
				if _, err := svc.Write(dst, chunk); err != nil {
					return 0, err
				}
			}
			if err := svc.Close(src); err != nil {
				return 0, err
			}
			if err := svc.Close(dst); err != nil {
				return 0, err
			}
		}
	}
	// cleanup phase.
	for d := 0; d < a.Dirs; d++ {
		for f := 0; f < a.FilesPerDir; f++ {
			if err := svc.Unlink(a.copyName(d, f)); err != nil {
				return 0, err
			}
		}
	}
	return svc.Stats().Ops, nil
}

func (a AndrewMini) dirName(d int) string { return fmt.Sprintf("%s/src/d%02d", a.Root, d) }
func (a AndrewMini) fileName(d, f int) string {
	return fmt.Sprintf("%s/f%02d.c", a.dirName(d), f)
}
func (a AndrewMini) copyName(d, f int) string {
	return fmt.Sprintf("%s/copy/d%02d_f%02d.c", a.Root, d, f)
}
