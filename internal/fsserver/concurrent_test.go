package fsserver

import (
	"fmt"
	"sync"
	"testing"

	"archos/internal/arch"
	"archos/internal/faultplane"
	"archos/internal/fs"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
)

// soakScript sizes one client's rooted andrew-mini replay so the
// four-way race-enabled soak stays fast in CI while still issuing a few
// hundred operations per client.
func soakScript(client int) AndrewMini {
	return AndrewMini{
		Dirs:        4,
		FilesPerDir: 5,
		FileBytes:   1500,
		Seed:        1991 + int64(client),
		Root:        fmt.Sprintf("/c%d", client),
	}
}

func TestConcurrentClientsChaosSoak(t *testing.T) {
	// The tentpole soak at the service layer: four concurrent Remotes —
	// one wire client each — share one link, one server, and one file
	// system, each replaying its script in a disjoint subtree while the
	// seeded chaos policy disrupts ≥20% of all frames on the shared
	// medium. The combined final state must be byte-identical to the
	// same four scripts replayed sequentially on the fault-free
	// monolithic arrangement: no lost acknowledged ops, no double-applied
	// writes, regardless of how the four call streams interleave.
	const nClients = 4
	cm := kernel.NewCostModel(arch.R3000)

	clean := fs.New(256)
	direct := NewDirect(clean, cm)
	for i := 0; i < nClients; i++ {
		if _, err := soakScript(i).Run(direct); err != nil {
			t.Fatalf("fault-free monolithic run, client %d: %v", i, err)
		}
	}
	want := clean.Fingerprint()

	link := wire.NewLink(localNet)
	plane := faultplane.New(faultplane.Chaos(1991))
	link.SetFaultPlane(plane)
	fsys := fs.New(256)
	base := NewRemoteOnLink(fsys, cm, link)
	remotes := make([]*Remote, nClients)
	for i := range remotes {
		if i == 0 {
			remotes[i] = base
		} else {
			remotes[i] = base.NewPeer()
		}
		remotes[i].Tune(64, 0)
	}

	var wg sync.WaitGroup
	errs := make([]error, nClients)
	for i, r := range remotes {
		wg.Add(1)
		go func(i int, r *Remote) {
			defer wg.Done()
			_, errs[i] = soakScript(i).Run(r)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if got := fsys.Fingerprint(); got != want {
		t.Errorf("concurrent decomposed state diverged from sequential fault-free monolithic state")
	}
	if fsys.OpenFDs() != 0 {
		t.Errorf("soak leaked %d descriptors", fsys.OpenFDs())
	}
	counts := plane.Counts()
	if counts.Dropped == 0 || counts.Duplicated == 0 || counts.Reordered == 0 || counts.Corrupted == 0 {
		t.Errorf("fault plane injected too little on the shared medium: %+v", counts)
	}
	degraded, retries := 0, 0
	for _, r := range remotes {
		st := r.Stats()
		degraded += st.DegradedOps
		retries += st.Wire.Retries
	}
	if degraded != 0 {
		t.Errorf("%d ops degraded despite the generous retry budget", degraded)
	}
	if retries == 0 || base.Stats().Wire.DuplicatesSuppressed == 0 {
		t.Errorf("no retransmission traffic under chaos: retries=%d, server=%+v",
			retries, base.server.Wire.Stats())
	}
}

func TestPeersShareServerSideCounters(t *testing.T) {
	// Each peer's Stats must report its own client-side transport
	// counters but the shared server's aggregate counters.
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	fsys := fs.New(64)
	r1 := NewRemoteOnLink(fsys, cm, link)
	r2 := r1.NewPeer()

	if err := r1.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	s1, s2 := r1.Stats(), r2.Stats()
	if s1.Ops != 1 || s2.Ops != 1 {
		t.Errorf("per-peer ops = %d, %d, want 1 each", s1.Ops, s2.Ops)
	}
	if s1.Wire.Served != 2 || s2.Wire.Served != 2 {
		t.Errorf("server-side served = %d, %d, want the shared aggregate 2", s1.Wire.Served, s2.Wire.Served)
	}
}
