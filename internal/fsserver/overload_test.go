package fsserver

import (
	"errors"
	"fmt"
	"testing"

	"archos/internal/arch"
	"archos/internal/fs"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/kernel"
)

// shedRemote builds a decomposed arrangement on an Ethernet-class link
// (nonzero per-frame charge) with deadline-aware shedding armed — the
// harness every overload test starts from. An op issued with
// expireSoon gets its expiry stamped one microsecond ahead: the client
// pre-send check passes, the frame's own wire charge pushes the clock
// past the expiry, and the server sheds it — a deterministic
// server-side shed through the normal client path.
func shedRemote(t *testing.T) (*Remote, *wire.Link) {
	t.Helper()
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(ipc.Ethernet10)
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	remote.server.Wire.SetAdmission(wire.AdmissionConfig{ShedExpired: true})
	return remote, link
}

func expireSoon(r *Remote, link *wire.Link) {
	r.SetExpiry(link.Clock() + 1)
}

// TestOverloadErrorSplit: a shed op surfaces as the typed ErrOverloaded
// with its own counter, a transport-exhausted op stays ErrUnavailable —
// the two failure classes never conflate.
func TestOverloadErrorSplit(t *testing.T) {
	remote, link := shedRemote(t)

	expireSoon(remote, link)
	err := remote.Mkdir("/shed")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed op err = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrDegraded) {
		t.Fatalf("shed op err = %v leaked into another class", err)
	}
	if _, err := remote.server.CurrentFS().Stat("/shed"); err == nil {
		t.Error("shed op executed: /shed exists")
	}

	// A lost frame with no retries left is the transport failing — the
	// old catch-all, now strictly for non-overload failures.
	remote.SetExpiry(0)
	remote.Tune(0, 0)
	link.DropFrame(link.Frames() + 1)
	err = remote.Mkdir("/lost")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("lost op err = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("lost op err = %v conflated with overload", err)
	}

	st := remote.Stats()
	if st.OverloadedOps != 1 || st.DegradedOps != 1 {
		t.Errorf("overloaded = %d degraded = %d, want 1 and 1", st.OverloadedOps, st.DegradedOps)
	}
	if st.Wire.ShedExpired != 1 || st.Wire.ShedLocal != 1 {
		t.Errorf("wire shedExpired = %d shedLocal = %d, want 1 and 1",
			st.Wire.ShedExpired, st.Wire.ShedLocal)
	}
}

// TestBreakerFastFailsAndRecovers: consecutive overloads trip the
// breaker; while open, ops fail fast as ErrDegraded with zero wire
// traffic; after the seeded cooldown the probe goes out and a healthy
// answer closes the breaker.
func TestBreakerFastFailsAndRecovers(t *testing.T) {
	remote, link := shedRemote(t)
	remote.EnableBreaker(2, 10_000)

	for i := 0; i < 2; i++ {
		expireSoon(remote, link)
		if err := remote.Mkdir(fmt.Sprintf("/m%d", i)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("op %d err = %v, want ErrOverloaded", i, err)
		}
	}

	// Tripped: the next op must fail locally — no frame leaves.
	remote.SetExpiry(0)
	frames := link.Frames()
	err := remote.Mkdir("/fast")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("open-breaker err = %v, want ErrDegraded", err)
	}
	if link.Frames() != frames {
		t.Errorf("breaker open yet %d frames hit the wire", link.Frames()-frames)
	}
	st := remote.Stats()
	if st.BreakerFastFails != 1 || st.BreakerOpens != 1 || st.OverloadedOps != 2 {
		t.Errorf("fastFails = %d opens = %d overloaded = %d, want 1, 1, 2",
			st.BreakerFastFails, st.BreakerOpens, st.OverloadedOps)
	}

	// Past the worst-case cooldown (base × 1.5) the probe is admitted;
	// the service is healthy again, so the probe closes the breaker.
	link.AdvanceClock(15_001)
	if err := remote.Mkdir("/probe"); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if err := remote.Mkdir("/after"); err != nil {
		t.Fatalf("post-recovery op failed: %v", err)
	}
	if st := remote.Stats(); st.BreakerFastFails != 1 {
		t.Errorf("fastFails grew to %d after recovery, want 1", st.BreakerFastFails)
	}
}

// TestBreakerProbeReopens: a probe that comes back shed re-opens the
// breaker for a fresh cooldown instead of letting traffic through.
func TestBreakerProbeReopens(t *testing.T) {
	remote, link := shedRemote(t)
	remote.EnableBreaker(1, 10_000)

	expireSoon(remote, link)
	if err := remote.Mkdir("/m"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	link.AdvanceClock(15_001)
	// The probe goes out — and is shed too (still "overloaded").
	expireSoon(remote, link)
	if err := remote.Mkdir("/m2"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe err = %v, want ErrOverloaded", err)
	}
	// Re-opened: the very next op fails fast again.
	remote.SetExpiry(0)
	if err := remote.Mkdir("/m3"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err after failed probe = %v, want ErrDegraded", err)
	}
	if st := remote.Stats(); st.BreakerOpens != 2 {
		t.Errorf("breaker opens = %d, want 2", st.BreakerOpens)
	}
}

// TestShedRetransmitAcrossCrashRecovery: a shed call leaves no
// at-most-once record anywhere — reply cache or WAL — so when the same
// call ID is retransmitted (with a fresh deadline stamp) after the
// server crashes and recovers, the recovered server executes it as a
// fresh call, exactly once.
func TestShedRetransmitAcrossCrashRecovery(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	link := wire.NewLink(localNet)
	remote := NewRemoteOnLink(fs.New(64), cm, link)
	remote.server.Wire.SetAdmission(wire.AdmissionConfig{ShedExpired: true})

	if err := remote.Mkdir("/d"); err != nil { // call 1: executed and logged
		t.Fatal(err)
	}
	link.AdvanceClock(100)

	// Call 2, hand-crafted with an already-expired deadline: shed.
	payload, err := wire.Marshal("/d/shed")
	if err != nil {
		t.Fatal(err)
	}
	expired, err := wire.Encode(wire.Header{Kind: wire.KindCall, CallID: 2, ProcID: ProcMkdir, ClientID: remote.client.ClientID, Expiry: 1}, payload)
	if err != nil {
		t.Fatal(err)
	}
	link.Send(wire.A, expired)
	remote.server.Wire.Poll()
	if _, err := remote.server.CurrentFS().Stat("/d/shed"); err == nil {
		t.Fatal("shed op executed before the crash")
	}
	if st := remote.server.Wire.Stats(); st.ShedExpired != 1 {
		t.Fatalf("shedExpired = %d, want 1", st.ShedExpired)
	}
	// Drain the reject so the queue holds nothing for call 2.
	for {
		if _, err := link.RecvClient(wire.A, remote.client.ClientID); err != nil {
			break
		}
	}

	remote.server.Wire.ForceCrash()

	// The caller re-issues call 2 with a fresh stamp (re-issuing is
	// when deadlines are re-derived). The recovering server replays the
	// WAL — which knows this client's last executed call is 1 — and
	// must run call 2 fresh, not suppress it.
	resend, err := wire.Encode(wire.Header{Kind: wire.KindCall, CallID: 2, ProcID: ProcMkdir, ClientID: remote.client.ClientID}, payload)
	if err != nil {
		t.Fatal(err)
	}
	link.Send(wire.A, resend)
	remote.server.Wire.Poll()

	if _, err := remote.server.CurrentFS().Stat("/d/shed"); err != nil {
		t.Errorf("retransmit after shed+crash did not execute: %v", err)
	}
	recoveries, _ := remote.server.Recoveries()
	if recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", recoveries)
	}
	if st := remote.server.Wire.Stats(); st.LogDuplicates != 0 || st.DuplicatesSuppressed != 0 {
		t.Errorf("logDup = %d cacheDup = %d, want 0 and 0 (the shed must not have seeded dedup)",
			st.LogDuplicates, st.DuplicatesSuppressed)
	}
}

// TestShedRetransmitAcrossFailover: a call shed by the primary is
// never shipped to the backup, so after the primary dies and the
// backup promotes, the same call ID arriving there must execute — the
// shipped WAL holds no record to wrongly suppress it. Overload itself
// must not trigger the failover: only the primary's death does.
func TestShedRetransmitAcrossFailover(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	cluster := NewCluster(64, cm, DefaultReplicaConfig())
	remote := cluster.NewClient()
	cluster.Primary().Wire.SetAdmission(wire.AdmissionConfig{ShedExpired: true})

	if err := remote.Mkdir("/base"); err != nil { // call 1: executed, shipped
		t.Fatal(err)
	}
	clientID := remote.fo.ClientID()
	cluster.PrimaryLink().AdvanceClock(100)

	// Call 2, already expired: the primary sheds it without executing,
	// logging, or shipping.
	payload, err := wire.Marshal("/shed")
	if err != nil {
		t.Fatal(err)
	}
	expired, err := wire.Encode(wire.Header{Kind: wire.KindCall, CallID: 2, ProcID: ProcMkdir, ClientID: clientID, Expiry: 1}, payload)
	if err != nil {
		t.Fatal(err)
	}
	cluster.PrimaryLink().Send(wire.A, expired)
	cluster.Primary().Wire.Poll()
	if st := cluster.Primary().Wire.Stats(); st.ShedExpired != 1 {
		t.Fatalf("shedExpired = %d, want 1", st.ShedExpired)
	}
	if _, err := cluster.Primary().CurrentFS().Stat("/shed"); err == nil {
		t.Fatal("shed op executed on the primary")
	}
	if remote.Stats().Wire.Failovers != 0 {
		t.Fatal("overload triggered a failover")
	}
	for { // drain the reject
		if _, err := cluster.PrimaryLink().RecvClient(wire.A, clientID); err != nil {
			break
		}
	}

	cluster.KillPrimaryForever()

	// The failover client's next call reuses ID 2 (the shed consumed no
	// sequence number it knew about): it fails over to the promoted
	// backup and must execute there exactly once.
	if err := remote.Mkdir("/shed"); err != nil {
		t.Fatalf("re-issued op after failover: %v", err)
	}
	if !cluster.Backup(0).Promoted() {
		t.Fatal("backup did not promote")
	}
	if _, err := cluster.ActiveFS().Stat("/shed"); err != nil {
		t.Errorf("/shed missing after failover: %v", err)
	}
	if _, err := cluster.ActiveFS().Stat("/base"); err != nil {
		t.Errorf("/base missing after failover: %v", err)
	}
	if st := cluster.Backup(0).srv.Wire.Stats(); st.LogDuplicates != 0 {
		t.Errorf("promoted backup suppressed the call as a log duplicate (%d)", st.LogDuplicates)
	}
	if err := cluster.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}
