package workload

import (
	"bytes"
	"strings"
	"testing"

	"archos/internal/obs"
)

// TestFlightRecorderDeterministic is the flight-recorder determinism
// gate: the same seeded load run, twice, must produce byte-identical
// anomaly dumps, trace tails, and critical-path tables — in both the
// undefended and the defended configuration. This is the property the
// CI cmp step rests on: a postmortem dump is evidence, and evidence
// must be reproducible.
func TestFlightRecorderDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name     string
		controls LoadControls
	}{
		{"undefended", ControlsOff()},
		{"defended", ControlsOn()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultLoadConfig()
			cfg.Controls = tc.controls
			r1, err := RunLoad(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunLoad(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := jsonl(t, r1.AnomalyDump), jsonl(t, r2.AnomalyDump); !bytes.Equal(got, want) {
				t.Error("same-seed runs produced different anomaly dumps")
			}
			if got, want := jsonl(t, r1.TraceTail), jsonl(t, r2.TraceTail); !bytes.Equal(got, want) {
				t.Error("same-seed runs produced different trace tails")
			}
			tab1 := obs.CriticalPath(r1.TraceTail, nil).Table("critpath").String()
			tab2 := obs.CriticalPath(r2.TraceTail, nil).Table("critpath").String()
			if tab1 != tab2 {
				t.Errorf("same-seed runs produced different critpath tables:\n%s\nvs\n%s", tab1, tab2)
			}
			if r1.TraceRetained != r2.TraceRetained || r1.TraceDropped != r2.TraceDropped {
				t.Errorf("ring bookkeeping differs: %d/%d vs %d/%d",
					r1.TraceRetained, r1.TraceDropped, r2.TraceRetained, r2.TraceDropped)
			}
		})
	}
}

// TestFlightRecorderAnomalyTriggers checks that the always-on recorder
// catches each configuration's signature incident at its onset: the
// undefended run's goodput collapse, the defended run's shed storm —
// and that the bounded ring really is bounded through a run that emits
// far more events than it retains.
func TestFlightRecorderAnomalyTriggers(t *testing.T) {
	cfg := DefaultLoadConfig()

	cfg.Controls = ControlsOff()
	off, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Controls = ControlsOn()
	on, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if k := anomalyKinds(off); !strings.Contains(k, "goodput_collapse") {
		t.Errorf("undefended run logged anomalies %q, want a goodput_collapse", k)
	}
	if k := anomalyKinds(on); !strings.Contains(k, "shed_storm") {
		t.Errorf("defended run logged anomalies %q, want a shed_storm", k)
	}

	for name, r := range map[string]*LoadResult{"undefended": off, "defended": on} {
		if len(r.Anomalies) == 0 {
			t.Fatalf("%s run logged no anomalies", name)
		}
		// Onset logging: a two-second collapse is one incident, not one
		// anomaly per window it persists.
		if len(r.Anomalies) > 4 {
			t.Errorf("%s run logged %d anomalies; onsets only, expected a handful", name, len(r.Anomalies))
		}
		if r.AnomalyDump == nil {
			t.Fatalf("%s run tripped triggers but snapshotted no dump", name)
		}
		if got := len(r.AnomalyDump); got == 0 || got > flightRecorderCap {
			t.Errorf("%s anomaly dump holds %d events, want 1..%d", name, got, flightRecorderCap)
		}
		if r.TraceRetained > flightRecorderCap {
			t.Errorf("%s ring retained %d events, cap %d", name, r.TraceRetained, flightRecorderCap)
		}
		if r.TraceDropped == 0 {
			t.Errorf("%s ring dropped nothing; a full soak must outrun the ring", name)
		}
		// The dump ends at the incident: its last event is the anomaly
		// marker the trigger emitted.
		last := r.AnomalyDump[len(r.AnomalyDump)-1]
		if last.Layer != "anomaly" {
			t.Errorf("%s dump ends with %s/%s, want the anomaly marker", name, last.Layer, last.Name)
		}
	}

	// The anomaly log itself is part of the JSON result; the two
	// configurations must disagree about what went wrong.
	if anomalyKinds(off) == anomalyKinds(on) {
		t.Error("defended and undefended runs logged identical anomaly kinds")
	}
}

// TestAnomalyOnsetDetection drives checkAnomaly directly through a
// synthetic curve: triggers log at onset, persistence is suppressed, a
// healthy window re-arms, and sub-threshold windows never fire.
func TestAnomalyOnsetDetection(t *testing.T) {
	cfg := DefaultLoadConfig()
	r := &loadRun{cfg: cfg, res: &LoadResult{}}
	r.rec = obs.NewFlightRecorder(fixedClock{}, 64)
	r.res.Curve = []LoadPoint{
		{Offered: 500, Goodput: 400},                              // healthy
		{Offered: 500, Goodput: 0, Shed: shedStormThreshold},      // storm onset
		{Offered: 500, Goodput: 0, Shed: shedStormThreshold + 50}, // storm persists
		{Offered: 500, Goodput: 0},                                // collapse onset (different kind)
		{Offered: collapseMinOffered - 1, Goodput: 0},             // below guard: healthy
		{Offered: 500, Goodput: 0},                                // collapse again: new onset
		{Offered: 500, Goodput: 1},                                // healthy
	}
	for i := range r.res.Curve {
		r.checkAnomaly(i)
	}
	var kinds []string
	for _, a := range r.res.Anomalies {
		kinds = append(kinds, a.Kind)
	}
	want := []string{"shed_storm", "goodput_collapse", "goodput_collapse"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("anomaly onsets = %v, want %v", kinds, want)
	}
	if r.res.Anomalies[0].Window != 1 || r.res.Anomalies[1].Window != 3 || r.res.Anomalies[2].Window != 5 {
		t.Errorf("anomaly windows = %+v, want onsets at 1, 3, 5", r.res.Anomalies)
	}
	if r.res.AnomalyDump == nil {
		t.Error("first onset did not snapshot the ring")
	}
}

type fixedClock struct{}

func (fixedClock) Clock() float64 { return 0 }

func jsonl(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := obs.WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func anomalyKinds(r *LoadResult) string {
	var kinds []string
	for _, a := range r.Anomalies {
		kinds = append(kinds, a.Kind)
	}
	return strings.Join(kinds, ",")
}
