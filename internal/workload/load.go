package workload

// The open-loop load generator: a discrete-event simulation, on the
// wire's virtual clock, of up to a million independent sessions
// pressing metadata operations onto the real decomposed file service —
// real frames through the real codec, admission control, reply cache,
// and WAL, not a queueing model of them. "Open loop" is the property
// that matters for overload: arrivals are scheduled by the workload's
// own arrival process (bursty session activations over a diurnal ramp,
// with a configurable overload burst), not by completions, so a slow
// server does not slow its offered load — the regime where retry
// storms turn a transient burst into a metastable collapse.
//
// Each logical op is one RPC: a Mkdir (mutation) or Stat (read) on a
// Zipf-popular path. Sessions multiplex onto a bounded pool of wire
// client identities (a connection pool), one outstanding call per
// identity, so the server's per-client at-most-once window holds.
// Client behaviour mirrors wire.Client's discipline: an absolute
// deadline stamped into the frame header (when deadline propagation is
// on), jittered retransmission backoff, a shared retry budget, and —
// above the transport — the application-level re-issue: a user whose
// request failed presses the button again, with a fresh deadline and a
// fresh call ID. Re-issues are what dedup cannot absorb, and what
// sustains collapse when the server keeps executing work whose callers
// have already given up.
//
// Everything is seeded and single-threaded: same seed, same arrival
// schedule, same byte-identical result — and the arrival process draws
// from its own PRNG stream, so toggling the overload controls changes
// the service's behaviour under a load that is provably the same.

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"archos/internal/fs"
	"archos/internal/fsserver"
	"archos/internal/ipc"
	"archos/internal/ipc/wire"
	"archos/internal/obs"
)

// Flight-recorder sizing and anomaly thresholds. The ring holds the
// last flightRecorderCap events in bounded memory no matter how long
// the run — a million-session soak retains its tail, not its history —
// and the anomaly checks snapshot that tail the moment a closed curve
// window shows the service misbehaving, so the dump holds the events
// leading INTO the incident, not the quiet aftermath.
const (
	// flightRecorderCap is the ring size of the always-on recorder:
	// 32Ki events, a few MB, regardless of run length.
	flightRecorderCap = 1 << 15
	// shedStormThreshold flags a window in which the server shed at
	// least this many calls — the defended configuration's signature
	// under a burst.
	shedStormThreshold = 200
	// collapseMinOffered guards the goodput-collapse trigger: a window
	// must have offered at least this many fresh arrivals and completed
	// none of them in time. Quiet windows never trip it.
	collapseMinOffered = 50
)

// Anomaly is one tripped trigger: which rule fired, on which closed
// curve window, and the window's vital signs. The first anomaly of a
// run also snapshots the flight recorder's ring (LoadResult.AnomalyDump).
type Anomaly struct {
	Kind    string  `json:"kind"` // "shed_storm" | "goodput_collapse"
	Window  int     `json:"window"`
	TMicros float64 `json:"t_micros"`
	Offered int     `json:"offered"`
	Goodput int     `json:"goodput"`
	Shed    int     `json:"shed"`
}

// LoadControls selects which overload defences the run arms. The zero
// value is the undefended configuration: no deadline in the frame
// header, no server-side shedding, unlimited retransmissions.
type LoadControls struct {
	// PropagateDeadline stamps each call's absolute deadline into the
	// frame header, giving the server grounds to shed expired work.
	PropagateDeadline bool `json:"propagate_deadline"`
	// ShedExpired arms the server's deadline-aware admission check.
	ShedExpired bool `json:"shed_expired"`
	// MaxShardQueue bounds the server's per-shard admission queue
	// (0 = unbounded). It only bites under concurrent dispatch; the
	// single-threaded soak's pressure valve is deadline shedding.
	MaxShardQueue int `json:"max_shard_queue"`
	// RetryBudgetRatio funds retransmissions at this fraction of
	// completions (0 = unlimited retransmissions).
	RetryBudgetRatio float64 `json:"retry_budget_ratio"`
	// RetryBudgetBurst is the budget's bucket depth.
	RetryBudgetBurst int `json:"retry_budget_burst"`
}

// ControlsOn is the defended configuration: deadlines propagate, the
// server sheds expired work, and retransmissions are budgeted.
func ControlsOn() LoadControls {
	return LoadControls{
		PropagateDeadline: true,
		ShedExpired:       true,
		RetryBudgetRatio:  0.1,
		RetryBudgetBurst:  8,
	}
}

// ControlsOff is the undefended configuration.
func ControlsOff() LoadControls { return LoadControls{} }

// LoadConfig parameterises one open-loop run. All times are virtual
// microseconds; all rates are per virtual second.
type LoadConfig struct {
	Seed     int64 `json:"seed"`
	Sessions int   `json:"sessions"` // logical session identity space (up to 1e6)

	Paths         int     `json:"paths"`          // path universe size
	ZipfS         float64 `json:"zipf_s"`         // path popularity skew (>1)
	WriteFraction float64 `json:"write_fraction"` // fraction of ops that are Mkdir; rest Stat

	DurationMicros float64 `json:"duration_micros"`
	BaseRate       float64 `json:"base_rate"`   // offered ops/sec at the diurnal trough
	DiurnalAmp     float64 `json:"diurnal_amp"` // peak adds amp*base halfway through the run
	BurstFactor    float64 `json:"burst_factor"`
	BurstStart     float64 `json:"burst_start_micros"`
	BurstEnd       float64 `json:"burst_end_micros"`

	ParetoAlpha float64 `json:"pareto_alpha"` // session burst-size tail exponent
	BurstCap    int     `json:"burst_cap"`    // largest single session burst
	IntraGap    float64 `json:"intra_gap_micros"`

	ServiceMicros    float64 `json:"service_micros"` // per-executed-op charge; capacity = 1e6/this
	DeadlineMicros   float64 `json:"deadline_micros"`
	RetransmitMicros float64 `json:"retransmit_micros"`
	TransportRetries int     `json:"transport_retries"` // retransmissions per issue
	ReissueMax       int     `json:"reissue_max"`       // application-level re-issues per op
	ReissueDelay     float64 `json:"reissue_delay_micros"`
	MaxInFlight      int     `json:"max_in_flight"` // connection-pool size

	WindowMicros float64 `json:"window_micros"` // curve bucket width
	CacheBlocks  int     `json:"cache_blocks"`  // server file-system size

	Controls LoadControls `json:"controls"`
}

// DefaultLoadConfig sizes a run that collapses without the controls
// and recovers with them: capacity 10k ops/s (100 µs service charge),
// 60% baseline utilisation, and a 4× burst through the middle that
// outruns capacity long enough for every queued op to blow its 20 ms
// deadline.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Seed:     1991,
		Sessions: 100_000,

		Paths:         4096,
		ZipfS:         1.2,
		WriteFraction: 0.3,

		DurationMicros: 2_000_000,
		BaseRate:       6000,
		DiurnalAmp:     0.25,
		BurstFactor:    4,
		BurstStart:     500_000,
		BurstEnd:       800_000,

		ParetoAlpha: 1.5,
		BurstCap:    64,
		IntraGap:    200,

		ServiceMicros:    100,
		DeadlineMicros:   20_000,
		RetransmitMicros: 8_000,
		TransportRetries: 2,
		ReissueMax:       2,
		ReissueDelay:     10_000,
		MaxInFlight:      512,

		WindowMicros: 100_000,
		CacheBlocks:  512,

		Controls: ControlsOff(),
	}
}

// LoadPoint is one time bucket of the throughput-vs-latency curve.
type LoadPoint struct {
	TMicros   float64 `json:"t_micros"` // bucket start
	Offered   int     `json:"offered"`  // fresh arrivals scheduled in the bucket
	Done      int     `json:"done"`     // replies delivered in the bucket, any latency
	Goodput   int     `json:"goodput"`  // replies delivered within their deadline
	Failed    int     `json:"failed"`   // ops given up in the bucket
	Shed      int     `json:"shed"`     // reject frames seen in the bucket
	P99Micros float64 `json:"p99_micros"`
}

// LoadResult is one run's outcome: aggregate counters, the per-window
// curve, and the evidence needed to check the run against a monolithic
// replay.
type LoadResult struct {
	Curve []LoadPoint `json:"curve"`

	Offered         int `json:"offered"`  // fresh arrivals
	Reissues        int `json:"reissues"` // application-level re-issues
	Issued          int `json:"issued"`   // call frames for distinct (op, incarnation)
	Retransmits     int `json:"retransmits"`
	ClientDropped   int `json:"client_dropped"` // arrivals that found no free connection
	Executed        int `json:"executed"`       // op incarnations the server answered
	Goodput         int `json:"goodput"`        // answered within deadline
	Failed          int `json:"failed"`
	Rejected        int `json:"rejected"` // ops failed by a reject frame
	Timeouts        int `json:"timeouts"`
	BudgetDenied    int `json:"budget_denied"`
	SessionsTouched int `json:"sessions_touched"`

	CapacityPerSec float64 `json:"capacity_per_sec"`
	ClockMicros    float64 `json:"clock_micros"`

	// Fingerprint digests the server's final file-system state;
	// AcceptedMkdirs is the sorted set of directories whose creation the
	// service provably executed (a reply — success or name collision —
	// came back for a Mkdir on that path). Replaying the set on a fresh
	// monolithic arrangement must reproduce Fingerprint exactly: the
	// overload plane may refuse work, but everything it accepted took
	// effect exactly once.
	Fingerprint    string   `json:"fingerprint"`
	AcceptedMkdirs []string `json:"accepted_mkdirs"`

	ServerStats wire.Stats `json:"server_stats"`

	// Flight-recorder outcome: every anomaly trigger that fired, how
	// many events the bounded ring retained, and how many it overwrote.
	// The event dumps themselves are not part of the JSON result (they
	// are large); AnomalyDump is the ring as of the first trigger,
	// TraceTail the ring at end of run.
	Anomalies     []Anomaly `json:"anomalies,omitempty"`
	TraceRetained int       `json:"trace_retained"`
	TraceDropped  uint64    `json:"trace_dropped"`

	AnomalyDump []obs.Event `json:"-"`
	TraceTail   []obs.Event `json:"-"`
}

// ReplayAccepted re-runs every accepted mutation against mkdir — a
// fresh monolithic service, typically — so the caller can compare
// fingerprints. The load paths are single-component siblings, so the
// set replays order-independently; any error is a real divergence.
func (r *LoadResult) ReplayAccepted(mkdir func(string) error) error {
	for _, p := range r.AcceptedMkdirs {
		if err := mkdir(p); err != nil {
			return fmt.Errorf("replay of accepted mkdir %s: %w", p, err)
		}
	}
	return nil
}

// op states.
const (
	opInFlight = iota + 1
	opDone
	opFailed
)

// pending is one frame waiting in the NIC queue, carrying its span
// identity and enqueue time so the serve chain can attribute the FIFO
// wait to the call that paid it.
type pending struct {
	ci     int
	frame  []byte
	client uint32
	call   uint32
	enq    float64
}

// flight is one incarnation's transport record: which op and which of
// its incarnations the call ID belongs to, and how many responses the
// incarnation is still owed. Late responses to an abandoned
// incarnation route here and prove execution without being allowed to
// complete the op's current incarnation.
type flight struct {
	op   *lop
	gen  int
	sent int // transmissions of this incarnation
	seen int // responses drained for it
}

// lop is one logical operation (and its re-issued incarnations).
type lop struct {
	session int
	proc    uint32
	path    string
	payload []byte

	arrival  float64 // this incarnation's scheduled issue time
	deadline float64

	state    int
	gen      int // incarnation counter; stale timers check it
	conn     int // pool index, -1 when not holding a connection
	callID   uint32
	frame    []byte
	fl       *flight // current incarnation's transport record
	attempts int
	backoff  float64
	reissues int
	answered bool // some incarnation got a reply (op executed)
}

// event kinds.
const (
	evActivate = iota
	evArrive
	evRetx
	evTimeout
	evServe
)

type levent struct {
	t    float64
	seq  int // tie-break, preserving scheduling order
	kind int
	op   *lop
	gen  int
}

type eventHeap []levent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(levent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// loadRun is the live state of one simulation.
type loadRun struct {
	cfg     LoadConfig
	link    *wire.Link
	srv     *fsserver.Server
	budget  *wire.RetryBudget
	rec     *obs.Recorder // always-on bounded flight recorder
	curWin  int           // first curve window not yet closed by the clock
	anomaly string        // kind of the ongoing incident, "" when healthy

	// arrive drives the arrival process, behave everything the client
	// does about failures — separate streams so the offered load is
	// byte-identical across control settings.
	arrive *rand.Rand
	behave *rand.Rand
	zipf   *rand.Zipf

	events eventHeap
	seq    int

	connID  []uint32 // pool index -> wire client ID
	nextCID []uint32 // pool index -> next call ID
	free    []int
	flights map[uint64]*flight
	drainQ  []int // pool indexes with responses owed this round
	inDrain []bool

	// sendQ is the NIC queue between the clients and the server: frames
	// wait here and a chain of serve events feeds them to the server one
	// at a time, each charged at the service rate — so client timers
	// genuinely race server completions on the shared clock, instead of
	// every call resolving in the instant it was issued.
	sendQ    []pending
	sendHead int
	serving  bool

	touched []bool
	nTouch  int

	accepted map[string]bool

	res  *LoadResult
	lats [][]float64 // per-window completion latencies
}

// RunLoad executes one open-loop run and returns its result. Same
// config, same result, bit for bit.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Sessions < 1 || cfg.Paths < 2 || cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("workload: load config needs sessions ≥ 1, paths ≥ 2, zipf s > 1")
	}
	if cfg.ServiceMicros <= 0 || cfg.BaseRate <= 0 || cfg.DurationMicros <= 0 ||
		cfg.DeadlineMicros <= 0 || cfg.RetransmitMicros <= 0 || cfg.WindowMicros <= 0 ||
		cfg.MaxInFlight < 1 || cfg.ParetoAlpha <= 1 {
		return nil, fmt.Errorf("workload: load config has a non-positive rate, time, or pool size")
	}

	r := &loadRun{
		cfg: cfg,
		// The wire itself is effectively free (a fat local link):
		// capacity comes from the service charge alone, so the
		// collapse-vs-recovery comparison is about scheduling, not
		// bandwidth.
		link:     wire.NewLink(ipc.NetworkConfig{Name: "load", BandwidthMbps: 1e6}),
		arrive:   rand.New(rand.NewSource(cfg.Seed)),
		behave:   rand.New(rand.NewSource(cfg.Seed ^ 0x6c6f6164)), // "load"
		flights:  map[uint64]*flight{},
		touched:  make([]bool, cfg.Sessions),
		accepted: map[string]bool{},
		res:      &LoadResult{CapacityPerSec: 1e6 / cfg.ServiceMicros},
	}
	r.zipf = rand.NewZipf(r.arrive, cfg.ZipfS, 1, uint64(cfg.Paths-1))

	// The flight recorder is always on: a preallocated ring of the last
	// flightRecorderCap events, shared by the link, the server, and the
	// generator's own client-side emissions. Recording never touches the
	// clock or either PRNG stream, so the run is byte-identical to an
	// unrecorded one.
	r.rec = obs.NewFlightRecorder(r.link, flightRecorderCap)
	r.link.SetRecorder(r.rec)

	fsys := fs.New(cfg.CacheBlocks)
	r.srv = fsserver.NewServer(fsys, r.link, wire.B)
	r.srv.Wire.SetServiceCharge(cfg.ServiceMicros)
	if cfg.Controls.ShedExpired || cfg.Controls.MaxShardQueue > 0 {
		r.srv.Wire.SetAdmission(wire.AdmissionConfig{
			MaxShardQueue: cfg.Controls.MaxShardQueue,
			ShedExpired:   cfg.Controls.ShedExpired,
		})
	}
	// Every pool identity must stay inside the at-most-once window for
	// the whole run — eviction would re-execute a retransmission.
	r.srv.Wire.ConfigureReplyCache(32, cfg.MaxInFlight/32+2)
	if cfg.Controls.RetryBudgetRatio > 0 {
		r.budget = wire.NewRetryBudget(cfg.Controls.RetryBudgetRatio, float64(cfg.Controls.RetryBudgetBurst))
		r.budget.SetRecorder(r.rec)
	}

	r.connID = make([]uint32, cfg.MaxInFlight)
	r.nextCID = make([]uint32, cfg.MaxInFlight)
	r.inDrain = make([]bool, cfg.MaxInFlight)
	r.free = make([]int, 0, cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		// NewClient registers the identity with the link's reply router;
		// the pool drives the protocol itself and keeps only the ID.
		r.connID[i] = wire.NewClient(r.link, wire.A).ClientID
		r.free = append(r.free, i)
	}

	r.push(levent{t: 0, kind: evActivate})
	for r.events.Len() > 0 {
		e := heap.Pop(&r.events).(levent)
		if now := r.link.Clock(); now < e.t {
			r.link.AdvanceClock(e.t - now)
		}
		switch e.kind {
		case evActivate:
			r.activate(e.t)
		case evArrive:
			r.issue(e.op)
		case evRetx:
			r.retx(e.op, e.gen)
		case evTimeout:
			r.timeout(e.op, e.gen)
		case evServe:
			r.serve()
		}
		r.closeWindows()
	}
	// Belt and braces: one final poll and a sweep of every pool queue.
	// The serve chain answered every transmission before the heap could
	// empty, so this finds nothing — unless the protocol grew a leak.
	r.srv.Wire.Poll()
	for i := range r.connID {
		r.queueDrain(i)
	}
	r.drain()

	r.finish()
	return r.res, nil
}

// rate is the offered-load intensity at virtual time t: the diurnal
// ramp (trough at the endpoints, peak mid-run) times the burst window.
func (r *loadRun) rate(t float64) float64 {
	c := r.cfg
	v := c.BaseRate * (1 + c.DiurnalAmp*0.5*(1-math.Cos(2*math.Pi*t/c.DurationMicros)))
	if t >= c.BurstStart && t < c.BurstEnd {
		v *= c.BurstFactor
	}
	return v
}

// activate fires one session: it wakes, issues a heavy-tailed burst of
// ops, and the process schedules its next activation so the op rate
// tracks rate(t).
func (r *loadRun) activate(t float64) {
	c := r.cfg
	if t < c.DurationMicros {
		session := r.arrive.Intn(c.Sessions)
		if !r.touched[session] {
			r.touched[session] = true
			r.nTouch++
		}
		k := r.burstSize()
		for i := 0; i < k; i++ {
			arrival := t + float64(i)*c.IntraGap
			if arrival >= c.DurationMicros {
				break
			}
			proc := fsserver.ProcStat
			if r.arrive.Float64() < c.WriteFraction {
				proc = fsserver.ProcMkdir
			}
			op := &lop{
				session:  session,
				proc:     proc,
				path:     fmt.Sprintf("/z%05d", r.zipf.Uint64()),
				arrival:  arrival,
				deadline: arrival + c.DeadlineMicros,
				conn:     -1,
			}
			r.res.Offered++
			r.point(arrival).Offered++
			r.push(levent{t: arrival, kind: evArrive, op: op})
		}
		// Mean burst size of the (uncapped) Pareto, so activations are
		// paced to deliver rate(t) ops per second.
		meanBurst := c.ParetoAlpha / (c.ParetoAlpha - 1)
		r.push(levent{t: t + r.arrive.ExpFloat64()*meanBurst*1e6/r.rate(t), kind: evActivate})
	}
}

// burstSize draws a Pareto(1, alpha) burst, capped.
func (r *loadRun) burstSize() int {
	u := r.arrive.Float64()
	if u == 0 {
		return r.cfg.BurstCap
	}
	k := int(math.Pow(u, -1/r.cfg.ParetoAlpha))
	if k < 1 {
		k = 1
	}
	if k > r.cfg.BurstCap {
		k = r.cfg.BurstCap
	}
	return k
}

// issue places one incarnation of an op onto the wire: grab a
// connection, seal the frame (deadline stamped if propagation is on),
// transmit, and arm the retransmission and deadline timers.
func (r *loadRun) issue(op *lop) {
	now := r.link.Clock()
	if len(r.free) == 0 {
		r.res.ClientDropped++
		r.rec.Emit(obs.Event{Layer: "client", Name: "drop_local",
			Val: float64(r.res.ClientDropped)})
		r.fail(op, now, false)
		return
	}
	ci := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	r.nextCID[ci]++

	op.conn = ci
	op.callID = r.nextCID[ci]
	op.state = opInFlight
	r.rec.Emit(obs.Event{Layer: "client", Name: "call_start",
		Client: r.connID[ci], Call: op.callID, Proc: op.proc})
	op.attempts = 1
	op.backoff = r.cfg.RetransmitMicros
	op.fl = &flight{op: op, gen: op.gen}
	if op.payload == nil {
		p, err := wire.Marshal(op.path)
		if err != nil {
			panic(err) // a string argument always marshals
		}
		op.payload = p
	}
	var expiry uint32
	if r.cfg.Controls.PropagateDeadline {
		expiry = uint32(op.deadline)
	}
	frame, err := wire.Encode(wire.Header{
		Kind:     wire.KindCall,
		CallID:   op.callID,
		ProcID:   op.proc,
		ClientID: r.connID[ci],
		Expiry:   expiry,
	}, op.payload)
	if err != nil {
		panic(err) // bounded payload over our own codec: cannot fail
	}
	op.frame = frame
	r.flights[flightKey(r.connID[ci], op.callID)] = op.fl
	r.send(op)
	r.res.Issued++
	r.push(levent{t: now + op.backoff*(0.5+r.behave.Float64()), kind: evRetx, op: op, gen: op.gen})
	r.push(levent{t: op.deadline, kind: evTimeout, op: op, gen: op.gen})
}

// send enqueues the sealed frame on the NIC queue and kicks the serve
// chain if the server is idle.
func (r *loadRun) send(op *lop) {
	op.fl.sent++
	r.sendQ = append(r.sendQ, pending{
		ci: op.conn, frame: op.frame,
		client: r.connID[op.conn], call: op.callID,
		enq: r.link.Clock(),
	})
	if !r.serving {
		r.serving = true
		r.push(levent{t: r.link.Clock(), kind: evServe})
	}
}

// serve feeds exactly one queued frame to the server. The server
// executes it (charging the service time to the shared clock), sheds
// it, or answers it from the reply cache; the response drains in the
// same round. A non-empty queue schedules the next serve at the new
// clock, so the server works the backlog serially at the service rate
// — the FIFO queueing delay every overload mechanism here is about.
func (r *loadRun) serve() {
	if r.sendHead >= len(r.sendQ) {
		r.serving = false
		return
	}
	p := r.sendQ[r.sendHead]
	r.sendHead++
	if r.sendHead == len(r.sendQ) {
		r.sendQ = r.sendQ[:0]
		r.sendHead = 0
	}
	if r.rec.Enabled() {
		now := r.link.Clock()
		r.rec.EmitAt(obs.Event{T: now, Layer: "queue", Name: "wait",
			Client: p.client, Call: p.call,
			Dur: now - p.enq, Val: float64(len(r.sendQ) - r.sendHead)})
	}
	r.link.Send(wire.A, p.frame)
	r.srv.Wire.Poll()
	r.queueDrain(p.ci)
	r.drain()
	if r.sendHead < len(r.sendQ) {
		r.push(levent{t: r.link.Clock(), kind: evServe})
	} else {
		r.serving = false
	}
}

func (r *loadRun) queueDrain(ci int) {
	if !r.inDrain[ci] {
		r.inDrain[ci] = true
		r.drainQ = append(r.drainQ, ci)
	}
}

// retx fires the retransmission timer for one incarnation. It only
// ever retransmits: the same sealed frame, same call ID, same stamped
// deadline — the transport never forges a fresh deadline for stale
// work — and when the retries or the budget run out it simply stops
// sending copies. Giving up belongs to the deadline timer alone: a
// caller waits out its full patience before pressing the button again.
func (r *loadRun) retx(op *lop, gen int) {
	if op.state != opInFlight || op.gen != gen {
		return
	}
	now := r.link.Clock()
	if now >= op.deadline || op.attempts > r.cfg.TransportRetries {
		return
	}
	if r.budget != nil && !r.budget.Spend() {
		r.res.BudgetDenied++
		return
	}
	op.attempts++
	r.res.Retransmits++
	r.rec.Emit(obs.Event{Layer: "client", Name: "retransmit",
		Client: r.connID[op.conn], Call: op.callID, Proc: op.proc,
		Val: float64(op.attempts)})
	r.send(op)
	if op.backoff *= 2; op.backoff > 4*r.cfg.RetransmitMicros {
		op.backoff = 4 * r.cfg.RetransmitMicros
	}
	r.push(levent{t: now + op.backoff*(0.5+r.behave.Float64()), kind: evRetx, op: op, gen: gen})
}

// timeout fires at the incarnation's deadline: if no response settled
// the op by then, the caller gives up — and, re-issues permitting,
// presses the button again.
func (r *loadRun) timeout(op *lop, gen int) {
	if op.state != opInFlight || op.gen != gen {
		return
	}
	r.res.Timeouts++
	r.fail(op, r.link.Clock(), false)
}

// fail ends one incarnation: release the connection, score the
// failure, and — sessions being sessions — schedule the re-issue if
// the op has presses left. The re-issue is a fresh call: new call ID,
// new deadline, a fresh draw on the service.
func (r *loadRun) fail(op *lop, now float64, rejected bool) {
	op.state = opFailed
	r.res.Failed++
	r.point(now).Failed++
	status := "status=timeout"
	if rejected {
		r.res.Rejected++
		status = "status=rejected"
	}
	if op.conn >= 0 {
		r.rec.Emit(obs.Event{Layer: "client", Name: "call_end",
			Client: r.connID[op.conn], Call: op.callID, Proc: op.proc,
			Attrs: status})
	}
	r.release(op)
	if op.reissues < r.cfg.ReissueMax {
		op.reissues++
		op.gen++
		op.frame = nil
		r.res.Reissues++
		op.arrival = now + r.cfg.ReissueDelay*(0.5+r.behave.Float64())
		op.deadline = op.arrival + r.cfg.DeadlineMicros
		r.push(levent{t: op.arrival, kind: evArrive, op: op})
	}
}

func (r *loadRun) release(op *lop) {
	if op.conn >= 0 {
		r.free = append(r.free, op.conn)
		op.conn = -1
	}
}

// drain routes every response delivered this round to its op. Replies
// — success or remote error — prove execution and earn the budget;
// rejects prove the opposite.
func (r *loadRun) drain() {
	for len(r.drainQ) > 0 {
		ci := r.drainQ[len(r.drainQ)-1]
		r.drainQ = r.drainQ[:len(r.drainQ)-1]
		r.inDrain[ci] = false
		for {
			frame, err := r.link.RecvClient(wire.A, r.connID[ci])
			if err != nil {
				break
			}
			h, _, derr := wire.Decode(frame)
			if derr != nil {
				continue // clean link: unreachable
			}
			key := flightKey(h.ClientID, h.CallID)
			fl, ok := r.flights[key]
			if !ok {
				continue
			}
			fl.seen++
			op := fl.op
			live := fl.gen == op.gen && op.state == opInFlight
			now := r.link.Clock()
			switch h.Kind {
			case wire.KindReply:
				if r.budget != nil {
					r.budget.Earn()
				}
				if !op.answered {
					op.answered = true
					r.res.Executed++
					if op.proc == fsserver.ProcMkdir {
						r.accepted[op.path] = true
					}
				}
				if live {
					op.state = opDone
					r.release(op)
					lat := now - op.arrival
					p := r.point(now)
					p.Done++
					attrs := "status=late"
					if now <= op.deadline {
						p.Goodput++
						r.res.Goodput++
						attrs = "status=ok"
					}
					r.rec.Emit(obs.Event{Layer: "client", Name: "call_end",
						Client: h.ClientID, Call: h.CallID, Proc: op.proc,
						Dur: lat, Attrs: attrs})
					idx := r.winIdx(now)
					r.lats[idx] = append(r.lats[idx], lat)
				}
			case wire.KindReject:
				r.point(now).Shed++
				if live {
					r.fail(op, now, true)
				}
			}
			if fl.seen == fl.sent && (fl.gen != op.gen || op.state != opInFlight) {
				delete(r.flights, key)
			}
		}
	}
}

// closeWindows fires the anomaly checks for every curve window the
// virtual clock has fully passed. A window's counters are final once
// the clock crosses its end (completions, sheds, and failures land at
// the current clock; arrivals are never scheduled into the past), so
// a closed window is safe to judge.
func (r *loadRun) closeWindows() {
	w := int(r.link.Clock() / r.cfg.WindowMicros)
	for r.curWin < w {
		r.checkAnomaly(r.curWin)
		r.curWin++
	}
}

// checkAnomaly judges one closed window against the trigger rules. An
// incident is logged at its ONSET — the first triggering window after a
// healthy one — not once per window it persists, so a two-second
// collapse is one anomaly, not fourteen. The first trigger of the run
// also snapshots the flight recorder's ring — the events leading into
// the incident — before the drain tail scrolls them away.
func (r *loadRun) checkAnomaly(idx int) {
	if idx >= len(r.res.Curve) {
		return
	}
	p := r.res.Curve[idx]
	var kind string
	switch {
	case p.Shed >= shedStormThreshold:
		kind = "shed_storm"
	case p.Offered >= collapseMinOffered && p.Goodput == 0:
		kind = "goodput_collapse"
	default:
		r.anomaly = ""
		return
	}
	if kind == r.anomaly {
		return // the incident logged at its onset is still running
	}
	r.anomaly = kind
	r.rec.Emit(obs.Event{Layer: "anomaly", Name: kind,
		Dur: r.cfg.WindowMicros, Val: float64(idx)})
	r.res.Anomalies = append(r.res.Anomalies, Anomaly{
		Kind:    kind,
		Window:  idx,
		TMicros: p.TMicros,
		Offered: p.Offered,
		Goodput: p.Goodput,
		Shed:    p.Shed,
	})
	if r.res.AnomalyDump == nil {
		r.res.AnomalyDump = r.rec.Events()
	}
}

// finish assembles the result.
func (r *loadRun) finish() {
	res := r.res
	res.SessionsTouched = r.nTouch
	res.ClockMicros = r.link.Clock()
	res.ServerStats = r.srv.Wire.Stats()
	res.Fingerprint = r.srv.CurrentFS().Fingerprint()
	res.AcceptedMkdirs = make([]string, 0, len(r.accepted))
	for p := range r.accepted {
		res.AcceptedMkdirs = append(res.AcceptedMkdirs, p)
	}
	sort.Strings(res.AcceptedMkdirs)
	for i := range res.Curve {
		res.Curve[i].P99Micros = p99(r.lats[i])
	}
	res.TraceRetained = r.rec.EventCount()
	res.TraceDropped = r.rec.Dropped()
	res.TraceTail = r.rec.Events()
}

// p99 is the 99th-percentile of one window's completion latencies.
func p99(lats []float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	return s[(len(s)*99)/100]
}

func (r *loadRun) push(e levent) {
	e.seq = r.seq
	r.seq++
	heap.Push(&r.events, e)
}

// winIdx returns the curve bucket for time t, growing the curve as the
// drain tail runs past the configured duration.
func (r *loadRun) winIdx(t float64) int {
	idx := int(t / r.cfg.WindowMicros)
	if idx < 0 {
		idx = 0
	}
	for len(r.res.Curve) <= idx {
		r.res.Curve = append(r.res.Curve, LoadPoint{
			TMicros: float64(len(r.res.Curve)) * r.cfg.WindowMicros,
		})
		r.lats = append(r.lats, nil)
	}
	return idx
}

func (r *loadRun) point(t float64) *LoadPoint {
	return &r.res.Curve[r.winIdx(t)]
}

func flightKey(clientID, callID uint32) uint64 {
	return uint64(clientID)<<32 | uint64(callID)
}
