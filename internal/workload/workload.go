// Package workload defines the application workloads of the paper's
// Section 5 as synthetic service-request streams: "spellcheck-1
// (spellcheck a 1 page document); latex-150 (format a 150 page
// document); andrew-local (a script of file system intensive programs
// such as copy, compile and search, run using an entirely local file
// system); andrew-remote (the same script run using a remote file
// system); link-vmunix (the final link phase of a Mach kernel build)
// and parthenon (a resolution-based theorem prover that uses multiple
// threads to exploit or-parallelism)."
//
// Each Spec gives the workload's demand on the operating system —
// counts of file operations, read/write calls, forks, page faults,
// device interrupts, and user-level synchronisations — plus its pure
// user computation time. The mach package turns one Spec into the
// paper's Table 7 counters under either OS structure; the demand is OS-
// independent, the counters are not.
package workload

// Spec is one application's demand stream.
type Spec struct {
	Name string

	// UserSeconds is pure application computation (no OS involvement)
	// on the paper's measurement platform (a 25 MHz R3000).
	UserSeconds float64
	// ServiceSeconds is time inside operating-system services doing
	// real work (file system, paging I/O) — identical under both
	// structures; only where it runs differs.
	ServiceSeconds float64

	FileOps    int // open/close pairs
	ReadWrites int // read/write/stat-class calls
	OtherCalls int // remaining Unix calls
	Forks      int // fork/exec pairs

	PageFaults int // user page faults (zero-fill, COW, file-backed)
	Interrupts int // device + clock interrupts

	// Blocks is the number of operations that block awaiting I/O
	// (cache-missing opens, disk-bound reads and faults). It is
	// workload data — cache behaviour differs wildly between, say, the
	// andrew script and a linker pass over warm object files.
	Blocks int

	// SyncOps is user-level lock acquisitions. On an architecture
	// without an atomic test-and-set (the measurement platform's MIPS
	// R3000), every one traps into the kernel and shows up in Table 7's
	// kernel-emulated instruction counts.
	SyncOps int64

	Threads int // application threads (parthenon: 1 or 10)

	// Remote routes file service across the network (andrew-remote):
	// each file operation additionally involves the network server.
	Remote bool
}

// UnixCalls is the number of Unix service invocations the workload
// makes: one per open and close, one per read/write, one per other
// call, three per fork/exec pair (fork, exec, wait).
func (s Spec) UnixCalls() int {
	return 2*s.FileOps + s.ReadWrites + s.OtherCalls + 3*s.Forks
}

// All returns the seven Table 7 workload rows in the paper's order.
func All() []Spec {
	return []Spec{Spellcheck, Latex150, AndrewLocal, AndrewRemote, LinkVmunix, Parthenon1, Parthenon10}
}

// Spellcheck: tiny input, short pipeline of small programs.
var Spellcheck = Spec{
	Name:        "spellcheck-1",
	UserSeconds: 1.0, ServiceSeconds: 0.9,
	FileOps: 60, ReadWrites: 500, OtherCalls: 170, Forks: 4,
	PageFaults: 1900, Interrupts: 300,
	Blocks:  190,
	Threads: 1,
}

// Latex150: long compute phases, steady font/aux file traffic.
var Latex150 = Spec{
	Name:        "latex-150",
	UserSeconds: 58, ServiceSeconds: 6,
	FileOps: 800, ReadWrites: 3200, OtherCalls: 600, Forks: 12,
	PageFaults: 12500, Interrupts: 2500,
	Blocks:  2300,
	Threads: 1,
}

// AndrewLocal: the file-system-intensive Andrew-style script on a local
// file system.
var AndrewLocal = Spec{
	Name:        "andrew-local",
	UserSeconds: 45, ServiceSeconds: 18,
	FileOps: 5000, ReadWrites: 22000, OtherCalls: 2300, Forks: 290,
	PageFaults: 52000, Interrupts: 14000,
	Blocks:  4700,
	Threads: 1,
}

// AndrewRemote: the same script against a remote file system.
var AndrewRemote = Spec{
	Name:        "andrew-remote",
	UserSeconds: 45, ServiceSeconds: 26,
	FileOps: 5000, ReadWrites: 22000, OtherCalls: 2600, Forks: 290,
	PageFaults: 52000, Interrupts: 14500,
	Blocks:  5500,
	Threads: 1,
	Remote:  true,
}

// LinkVmunix: one big link — heavy reads, few processes.
var LinkVmunix = Spec{
	Name:        "link-vmunix",
	UserSeconds: 16, ServiceSeconds: 5.5,
	FileOps: 1500, ReadWrites: 9400, OtherCalls: 600, Forks: 3,
	PageFaults: 12800, Interrupts: 2500,
	Blocks:  790,
	Threads: 1,
}

// Parthenon1: the or-parallel theorem prover pinned to one thread —
// almost no file activity, relentless lock traffic.
var Parthenon1 = Spec{
	Name:        "parthenon (1 thread)",
	UserSeconds: 17.5, ServiceSeconds: 0.3,
	FileOps: 25, ReadWrites: 140, OtherCalls: 55, Forks: 4,
	PageFaults: 800, Interrupts: 270,
	Blocks:  220,
	SyncOps: 1_395_000,
	Threads: 1,
}

// Parthenon10: ten threads; more scheduling, slightly less lock traffic
// (contention backs off), same proof.
var Parthenon10 = Spec{
	Name:        "parthenon (10 threads)",
	UserSeconds: 15.0, ServiceSeconds: 0.3,
	FileOps: 25, ReadWrites: 145, OtherCalls: 60, Forks: 4,
	PageFaults: 2300, Interrupts: 1050,
	Blocks:  290,
	SyncOps: 1_254_000,
	Threads: 10,
}
