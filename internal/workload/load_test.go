package workload

import (
	"reflect"
	"testing"

	"archos/internal/arch"
	"archos/internal/fs"
	"archos/internal/fsserver"
	"archos/internal/kernel"
)

// tailWindows sums a metric over the curve windows in [from, to).
func tailWindows(res *LoadResult, from, to float64, f func(LoadPoint) int) int {
	sum := 0
	for _, p := range res.Curve {
		if p.TMicros >= from && p.TMicros < to {
			sum += f(p)
		}
	}
	return sum
}

// TestOverloadCollapseAndRecovery is the headline soak: the same
// seeded open-loop load — a 4× burst through the middle of the run —
// against the undefended and the defended service. Undefended, the
// burst tips the service into metastable collapse: it executes work
// whose callers have given up, their re-issues keep the queue past the
// deadline horizon, and goodput stays near zero long after the burst
// has ended. Defended, expired work is shed at ~zero cost, goodput
// tracks capacity through the burst, and the service recovers to
// baseline when the burst passes.
func TestOverloadCollapseAndRecovery(t *testing.T) {
	cfg := DefaultLoadConfig()

	cfg.Controls = ControlsOff()
	off, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Controls = ControlsOn()
	on, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The two runs face the same offered load, drawn from a dedicated
	// arrival PRNG stream.
	if off.Offered != on.Offered {
		t.Fatalf("offered load differs across control settings: %d vs %d", off.Offered, on.Offered)
	}
	t.Logf("off: %+v", summarize(off))
	t.Logf("on:  %+v", summarize(on))
	for i := range off.Curve {
		p := off.Curve[i]
		t.Logf("off win %4.1fs offered=%4d done=%4d good=%4d failed=%4d shed=%4d p99=%6.0f",
			p.TMicros/1e6, p.Offered, p.Done, p.Goodput, p.Failed, p.Shed, p.P99Micros)
	}
	for i := range on.Curve {
		p := on.Curve[i]
		t.Logf("on  win %4.1fs offered=%4d done=%4d good=%4d failed=%4d shed=%4d p99=%6.0f",
			p.TMicros/1e6, p.Offered, p.Done, p.Goodput, p.Failed, p.Shed, p.P99Micros)
	}

	// Tail of the run: burst long over, arrivals back under capacity.
	tail0, tail1 := 1_500_000.0, 2_000_000.0
	offTailGood := tailWindows(off, tail0, tail1, func(p LoadPoint) int { return p.Goodput })
	offTailOffered := tailWindows(off, tail0, tail1, func(p LoadPoint) int { return p.Offered })
	onTailGood := tailWindows(on, tail0, tail1, func(p LoadPoint) int { return p.Goodput })

	// Undefended: metastable — goodput stays collapsed post-burst.
	if offTailOffered == 0 {
		t.Fatal("no offered load in the tail; config broken")
	}
	if lim := offTailOffered / 10; offTailGood > lim {
		t.Errorf("undefended tail goodput = %d of %d offered; expected collapse (< %d)",
			offTailGood, offTailOffered, lim)
	}
	// Defended: recovered — tail goodput back to a healthy fraction of
	// the same offered load.
	if lim := (offTailOffered * 8) / 10; onTailGood < lim {
		t.Errorf("defended tail goodput = %d of %d offered; expected recovery (> %d)",
			onTailGood, offTailOffered, lim)
	}

	// The defences actually fired, and only on the defended run.
	if off.ServerStats.ShedExpired != 0 || off.Rejected != 0 {
		t.Errorf("undefended run shed work: %d expired, %d rejected ops",
			off.ServerStats.ShedExpired, off.Rejected)
	}
	if on.ServerStats.ShedExpired == 0 || on.Rejected == 0 {
		t.Errorf("defended run never shed: stats %+v, rejected %d", on.ServerStats, on.Rejected)
	}
	// Undefended the server burns capacity executing everything ever
	// sent; defended it executes strictly less.
	if on.ServerStats.Served >= off.ServerStats.Served {
		t.Errorf("defended server executed %d ops, undefended %d; shedding saved nothing",
			on.ServerStats.Served, off.ServerStats.Served)
	}
}

type soakSummary struct {
	Offered, Reissues, Executed, Goodput, Failed, Rejected, Timeouts, Dropped int
	Sessions, Served                                                          int
}

func summarize(r *LoadResult) soakSummary {
	return soakSummary{
		Offered: r.Offered, Reissues: r.Reissues, Executed: r.Executed,
		Goodput: r.Goodput, Failed: r.Failed, Rejected: r.Rejected,
		Timeouts: r.Timeouts, Dropped: r.ClientDropped,
		Sessions: r.SessionsTouched, Served: r.ServerStats.Served,
	}
}

// TestLoadRunIsDeterministic: same config, byte-identical result —
// curve, stats, fingerprint, accepted set, final clock.
func TestLoadRunIsDeterministic(t *testing.T) {
	for _, controls := range []LoadControls{ControlsOff(), ControlsOn()} {
		cfg := DefaultLoadConfig()
		cfg.DurationMicros = 1_000_000
		cfg.Controls = controls
		a, err := RunLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("controls %+v: same seed produced different results", controls)
		}
	}
}

// TestLoadAcceptedMatchesMonolithic: whatever the overload plane did —
// shed, reject, deny retries — the set of mutations the service
// accepted replays on a fresh monolithic arrangement to the identical
// file-system fingerprint. Refusing work must never corrupt accepted
// work, under either control setting.
func TestLoadAcceptedMatchesMonolithic(t *testing.T) {
	cm := kernel.NewCostModel(arch.R3000)
	for _, controls := range []LoadControls{ControlsOff(), ControlsOn()} {
		cfg := DefaultLoadConfig()
		cfg.DurationMicros = 1_200_000
		cfg.Controls = controls
		res, err := RunLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clean := fs.New(cfg.CacheBlocks)
		direct := fsserver.NewDirect(clean, cm)
		if err := res.ReplayAccepted(direct.Mkdir); err != nil {
			t.Fatalf("controls %+v: %v", controls, err)
		}
		if got := clean.Fingerprint(); got != res.Fingerprint {
			t.Errorf("controls %+v: accepted-op replay diverged from the service's state", controls)
		}
	}
}

// TestLoadMillionSessions: the generator carries a million-session
// identity space without breaking a sweat — and the arrival process
// actually spreads across it.
func TestLoadMillionSessions(t *testing.T) {
	cfg := DefaultLoadConfig()
	cfg.Sessions = 1_000_000
	cfg.DurationMicros = 1_000_000
	cfg.Controls = ControlsOn()
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionsTouched < 500 {
		t.Errorf("only %d sessions activated", res.SessionsTouched)
	}
	if res.Offered == 0 || res.Executed == 0 {
		t.Errorf("run did nothing: %+v", summarize(res))
	}
}
