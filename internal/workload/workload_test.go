package workload

import "testing"

func TestUnixCalls(t *testing.T) {
	s := Spec{FileOps: 10, ReadWrites: 100, OtherCalls: 5, Forks: 2}
	if got := s.UnixCalls(); got != 20+100+5+6 {
		t.Errorf("UnixCalls = %d, want 131", got)
	}
}

func TestAllSevenRowsInPaperOrder(t *testing.T) {
	all := All()
	want := []string{
		"spellcheck-1", "latex-150", "andrew-local", "andrew-remote",
		"link-vmunix", "parthenon (1 thread)", "parthenon (10 threads)",
	}
	if len(all) != len(want) {
		t.Fatalf("%d workloads, want %d", len(all), len(want))
	}
	for i, w := range all {
		if w.Name != want[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, want[i])
		}
	}
}

func TestWorkloadsAreWellFormed(t *testing.T) {
	for _, w := range All() {
		if w.UserSeconds <= 0 || w.ServiceSeconds <= 0 {
			t.Errorf("%s: non-positive time components", w.Name)
		}
		if w.UnixCalls() <= 0 {
			t.Errorf("%s: no Unix calls", w.Name)
		}
		if w.Threads < 1 {
			t.Errorf("%s: %d threads", w.Name, w.Threads)
		}
		if w.Blocks <= 0 || w.Blocks > w.UnixCalls()+w.PageFaults+w.Interrupts {
			t.Errorf("%s: implausible block count %d", w.Name, w.Blocks)
		}
	}
}

func TestOnlyAndrewRemoteIsRemote(t *testing.T) {
	for _, w := range All() {
		if w.Remote != (w.Name == "andrew-remote") {
			t.Errorf("%s: Remote = %v", w.Name, w.Remote)
		}
	}
}

func TestOnlyParthenonSynchronises(t *testing.T) {
	// parthenon is the paper's showcase for the missing atomic
	// instruction; the other workloads have no user-level lock traffic.
	for _, w := range All() {
		isParthenon := w.Name == "parthenon (1 thread)" || w.Name == "parthenon (10 threads)"
		if (w.SyncOps > 0) != isParthenon {
			t.Errorf("%s: SyncOps = %d", w.Name, w.SyncOps)
		}
		if isParthenon && (w.SyncOps < 1_200_000 || w.SyncOps > 1_500_000) {
			t.Errorf("%s: SyncOps = %d, paper counts ≈1.25–1.40M", w.Name, w.SyncOps)
		}
	}
	if Parthenon10.Threads != 10 || Parthenon1.Threads != 1 {
		t.Error("parthenon thread counts wrong")
	}
}

func TestAndrewVariantsShareDemand(t *testing.T) {
	// andrew-remote is "the same script run using a remote file
	// system": identical file demand, only the transport differs.
	if AndrewLocal.FileOps != AndrewRemote.FileOps || AndrewLocal.ReadWrites != AndrewRemote.ReadWrites {
		t.Error("andrew variants should make the same file demand")
	}
	if AndrewRemote.ServiceSeconds <= AndrewLocal.ServiceSeconds {
		t.Error("remote file service should cost more service time")
	}
}
